//! Positional popcount: fold packed bit-vector reports into per-cell
//! tallies.
//!
//! The naive fold walks each report's set bits one `trailing_zeros` at
//! a time — O(set bits) scattered increments. Both kernels here
//! instead run a Harley–Seal carry-save-adder ladder: 16 input words
//! per column are compressed into persistent `ones`/`twos`/`fours`/
//! `eights` bit-planes plus one `sixteens` plane per block, and only
//! the planes are scattered into the accumulator (with weights 16 and,
//! at drain time, 1/2/4/8). Dense batches touch the accumulator ~16×
//! less often; the AVX2 variant additionally runs the ladder four
//! 64-bit columns at a time.
//!
//! Safety of the scatter: every plane is built from AND/OR/XOR of
//! input words, so a plane's set bits are a subset of the union of the
//! inputs' set bits. Callers validated that no report sets a bit past
//! the domain, hence no flush indexes past `acc.len()` even when the
//! last word has tail bits (`cells % 64 ≠ 0`).

/// Scatters one plane into the accumulator: every set bit `b` adds
/// `weight` to `acc[base + b]`.
#[inline]
fn walk(acc: &mut [u64], base: usize, mut plane: u64, weight: u64) {
    while plane != 0 {
        let b = plane.trailing_zeros() as usize;
        acc[base + b] += weight;
        plane &= plane - 1;
    }
}

/// The naive per-bit fold over columns `w0..w1` of each report — the
/// remainder path for batches (or column ranges) too small for the
/// CSA ladder to pay off.
fn walk_reports(acc: &mut [u64], words: usize, bits: &[u64], w0: usize, w1: usize) {
    for report in bits.chunks_exact(words) {
        for (c, &word) in report.iter().enumerate().take(w1).skip(w0) {
            walk(acc, c * 64, word, 1);
        }
    }
}

/// One carry-save-adder step: bitwise full adder over three planes,
/// returning `(sum, carry)`.
#[inline]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let u = a ^ b;
    (u ^ c, (a & b) | (u & c))
}

/// Folds 16 input words into the persistent planes, returning the new
/// planes plus the block's `sixteens` overflow plane.
#[inline]
fn csa16(
    ones: u64,
    twos: u64,
    fours: u64,
    eights: u64,
    d: &[u64; 16],
) -> (u64, u64, u64, u64, u64) {
    let (o, twos_a) = csa(ones, d[0], d[1]);
    let (o, twos_b) = csa(o, d[2], d[3]);
    let (t, fours_a) = csa(twos, twos_a, twos_b);
    let (o, twos_a) = csa(o, d[4], d[5]);
    let (o, twos_b) = csa(o, d[6], d[7]);
    let (t, fours_b) = csa(t, twos_a, twos_b);
    let (f, eights_a) = csa(fours, fours_a, fours_b);
    let (o, twos_a) = csa(o, d[8], d[9]);
    let (o, twos_b) = csa(o, d[10], d[11]);
    let (t, fours_a) = csa(t, twos_a, twos_b);
    let (o, twos_a) = csa(o, d[12], d[13]);
    let (o, twos_b) = csa(o, d[14], d[15]);
    let (t, fours_b) = csa(t, twos_a, twos_b);
    let (f, eights_b) = csa(f, fours_a, fours_b);
    let (e, sixteens) = csa(eights, eights_a, eights_b);
    (o, t, f, e, sixteens)
}

/// Scalar Harley–Seal fold over the whole batch.
pub(crate) fn fold_oue_scalar(acc: &mut [u64], words: usize, bits: &[u64]) {
    fold_oue_scalar_cols(acc, words, bits, 0, words)
}

/// Scalar Harley–Seal fold restricted to columns `w0..w1` — also the
/// remainder-column path of the AVX2 grouped kernel.
pub(crate) fn fold_oue_scalar_cols(
    acc: &mut [u64],
    words: usize,
    bits: &[u64],
    w0: usize,
    w1: usize,
) {
    if w0 >= w1 {
        return;
    }
    let n = bits.len() / words;
    if n < 16 {
        walk_reports(acc, words, bits, w0, w1);
        return;
    }
    let cols = w1 - w0;
    // planes[4·ci ..][0..4] = ones/twos/fours/eights for column w0+ci.
    let mut planes = vec![0u64; 4 * cols];
    let blocks = n / 16;
    for blk in 0..blocks {
        let r0 = blk * 16;
        for ci in 0..cols {
            let c = w0 + ci;
            let mut d = [0u64; 16];
            for (i, di) in d.iter_mut().enumerate() {
                *di = bits[(r0 + i) * words + c];
            }
            let p = &mut planes[4 * ci..4 * ci + 4];
            let (o, t, f, e, sixteens) = csa16(p[0], p[1], p[2], p[3], &d);
            p[0] = o;
            p[1] = t;
            p[2] = f;
            p[3] = e;
            walk(acc, c * 64, sixteens, 16);
        }
    }
    walk_reports(acc, words, &bits[blocks * 16 * words..], w0, w1);
    for ci in 0..cols {
        let c = w0 + ci;
        let p = &planes[4 * ci..4 * ci + 4];
        walk(acc, c * 64, p[0], 1);
        walk(acc, c * 64, p[1], 2);
        walk(acc, c * 64, p[2], 4);
        walk(acc, c * 64, p[3], 8);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{fold_oue_scalar, fold_oue_scalar_cols, walk};
    use std::arch::x86_64::*;

    /// [`csa`](super::csa), four columns at a time.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn csa_256(a: __m256i, b: __m256i, c: __m256i) -> (__m256i, __m256i) {
        let u = _mm256_xor_si256(a, b);
        (
            _mm256_xor_si256(u, c),
            _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c)),
        )
    }

    /// [`csa16`](super::csa16), four columns at a time.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn csa16_256(
        ones: __m256i,
        twos: __m256i,
        fours: __m256i,
        eights: __m256i,
        d: &[__m256i; 16],
    ) -> (__m256i, __m256i, __m256i, __m256i, __m256i) {
        let (o, twos_a) = csa_256(ones, d[0], d[1]);
        let (o, twos_b) = csa_256(o, d[2], d[3]);
        let (t, fours_a) = csa_256(twos, twos_a, twos_b);
        let (o, twos_a) = csa_256(o, d[4], d[5]);
        let (o, twos_b) = csa_256(o, d[6], d[7]);
        let (t, fours_b) = csa_256(t, twos_a, twos_b);
        let (f, eights_a) = csa_256(fours, fours_a, fours_b);
        let (o, twos_a) = csa_256(o, d[8], d[9]);
        let (o, twos_b) = csa_256(o, d[10], d[11]);
        let (t, fours_a) = csa_256(t, twos_a, twos_b);
        let (o, twos_a) = csa_256(o, d[12], d[13]);
        let (o, twos_b) = csa_256(o, d[14], d[15]);
        let (t, fours_b) = csa_256(t, twos_a, twos_b);
        let (f, eights_b) = csa_256(f, fours_a, fours_b);
        let (e, sixteens) = csa_256(eights, eights_a, eights_b);
        (o, t, f, e, sixteens)
    }

    /// Scatters a vector plane whose lane `l` belongs to column
    /// `col_of(l)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn flush(acc: &mut [u64], v: __m256i, weight: u64, col_of: impl Fn(usize) -> usize) {
        let mut lanes = [0u64; 4];
        unsafe {
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        }
        for (l, &plane) in lanes.iter().enumerate() {
            walk(acc, col_of(l) * 64, plane, weight);
        }
    }

    /// AVX2 fold. Three regimes by report width:
    /// * `words ∈ {1, 2}` — reports are shorter than one vector, so
    ///   the batch is treated as one contiguous `u64` stream in blocks
    ///   of 64 words; because `words` divides 4 and blocks start at
    ///   multiples of 64, vector lane `l` always holds column
    ///   `l % words`.
    /// * `words ≥ 4` — each vector load spans four adjacent columns of
    ///   one report (`groups = words / 4` column groups, each with its
    ///   own persistent vector planes); leftover columns run the
    ///   scalar column-range kernel.
    /// * `words == 3` — no alignment regime fits; scalar.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn fold_oue_avx2(acc: &mut [u64], words: usize, bits: &[u64]) {
        let n = bits.len() / words;
        if n < 16 {
            fold_oue_scalar(acc, words, bits);
            return;
        }
        unsafe {
            match words {
                1 | 2 => stream(acc, words, bits),
                3 => fold_oue_scalar(acc, words, bits),
                _ => grouped(acc, words, bits),
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn stream(acc: &mut [u64], words: usize, bits: &[u64]) {
        unsafe {
            let total = bits.len();
            let blocks = total / 64;
            let zero = _mm256_setzero_si256();
            let (mut ones, mut twos, mut fours, mut eights) = (zero, zero, zero, zero);
            let ptr = bits.as_ptr();
            for blk in 0..blocks {
                let base = blk * 64;
                let mut d = [zero; 16];
                for (i, di) in d.iter_mut().enumerate() {
                    *di = _mm256_loadu_si256(ptr.add(base + 4 * i) as *const __m256i);
                }
                let (o, t, f, e, sixteens) = csa16_256(ones, twos, fours, eights, &d);
                ones = o;
                twos = t;
                fours = f;
                eights = e;
                flush(acc, sixteens, 16, |l| l % words);
            }
            flush(acc, ones, 1, |l| l % words);
            flush(acc, twos, 2, |l| l % words);
            flush(acc, fours, 4, |l| l % words);
            flush(acc, eights, 8, |l| l % words);
            for (off, &word) in bits[blocks * 64..].iter().enumerate() {
                let idx = blocks * 64 + off;
                walk(acc, (idx % words) * 64, word, 1);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn grouped(acc: &mut [u64], words: usize, bits: &[u64]) {
        unsafe {
            let n = bits.len() / words;
            let groups = words / 4;
            let zero = _mm256_setzero_si256();
            // planes[4·g ..][0..4] = ones/twos/fours/eights for group g
            // (columns 4g..4g+4).
            let mut planes = vec![zero; 4 * groups];
            let blocks = n / 16;
            let ptr = bits.as_ptr();
            for blk in 0..blocks {
                let r0 = blk * 16;
                for g in 0..groups {
                    let mut d = [zero; 16];
                    for (i, di) in d.iter_mut().enumerate() {
                        *di =
                            _mm256_loadu_si256(ptr.add((r0 + i) * words + 4 * g) as *const __m256i);
                    }
                    let p = &mut planes[4 * g..4 * g + 4];
                    let (o, t, f, e, sixteens) = csa16_256(p[0], p[1], p[2], p[3], &d);
                    p[0] = o;
                    p[1] = t;
                    p[2] = f;
                    p[3] = e;
                    flush(acc, sixteens, 16, |l| 4 * g + l);
                }
            }
            for g in 0..groups {
                let p: [__m256i; 4] = [
                    planes[4 * g],
                    planes[4 * g + 1],
                    planes[4 * g + 2],
                    planes[4 * g + 3],
                ];
                flush(acc, p[0], 1, |l| 4 * g + l);
                flush(acc, p[1], 2, |l| 4 * g + l);
                flush(acc, p[2], 4, |l| 4 * g + l);
                flush(acc, p[3], 8, |l| 4 * g + l);
            }
            // Leftover columns (words % 4) for every report; leftover
            // reports (n % 16) for the vectorized columns.
            fold_oue_scalar_cols(acc, words, bits, 4 * groups, words);
            fold_oue_scalar_cols(acc, words, &bits[blocks * 16 * words..], 0, 4 * groups);
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use avx2::fold_oue_avx2;

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(acc: &mut [u64], words: usize, bits: &[u64]) {
        for report in bits.chunks_exact(words) {
            for (w, &word) in report.iter().enumerate() {
                walk(acc, w * 64, word, 1);
            }
        }
    }

    #[test]
    fn scalar_csa_matches_naive_across_block_remainders() {
        // words = 2, 100-cell domain (28 tail bits kept clear).
        let words = 2;
        let cells = 100usize;
        for n in [0usize, 1, 15, 16, 17, 31, 32, 33, 100] {
            let mut bits = Vec::with_capacity(n * words);
            for r in 0..n {
                let full = 0x9E37_79B9_7F4A_7C15u64.rotate_left(r as u32);
                bits.push(full);
                bits.push((full >> 32) & ((1u64 << (cells - 64)) - 1));
            }
            let mut want = vec![0u64; cells];
            naive(&mut want, words, &bits);
            let mut got = vec![0u64; cells];
            fold_oue_scalar(&mut got, words, &bits);
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn scalar_column_ranges_partition_the_fold() {
        let words = 5;
        let n = 40usize;
        let bits: Vec<u64> = (0..n * words)
            .map(|i| (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
            .collect();
        let mut want = vec![0u64; words * 64];
        naive(&mut want, words, &bits);
        let mut got = vec![0u64; words * 64];
        fold_oue_scalar_cols(&mut got, words, &bits, 0, 2);
        fold_oue_scalar_cols(&mut got, words, &bits, 2, 5);
        assert_eq!(got, want);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_matches_scalar_on_each_width_regime() {
        if !crate::avx2_available() {
            eprintln!("skipping: no AVX2 on this machine");
            return;
        }
        // One width per dispatch regime: stream ×2, scalar fallback,
        // grouped with and without a column remainder.
        for words in [1usize, 2, 3, 4, 7, 16] {
            for n in [0usize, 1, 15, 16, 17, 64, 129] {
                let bits: Vec<u64> = (0..n * words)
                    .map(|i| {
                        (i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .rotate_left((i % 61) as u32)
                    })
                    .collect();
                let mut want = vec![0u64; words * 64];
                fold_oue_scalar(&mut want, words, &bits);
                let mut got = vec![0u64; words * 64];
                // SAFETY: guarded by avx2_available above.
                unsafe { fold_oue_avx2(&mut got, words, &bits) };
                assert_eq!(got, want, "words = {words}, n = {n}");
            }
        }
    }
}
