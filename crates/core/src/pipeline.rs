//! The one-stop publishing API: build → publish in one fluent chain.
//!
//! The paper's workflow is always the same — pick a [`Method`], spend
//! ε over a dataset, publish the result, answer rectangle queries —
//! and [`Pipeline`] is that workflow as a type:
//!
//! ```
//! use dpgrid_core::{Method, Pipeline, Synopsis};
//! use dpgrid_geo::{generators::PaperDataset, Rect};
//!
//! let dataset = PaperDataset::Storage.generate_n(1, 3_000).unwrap();
//! let release = Pipeline::new(&dataset)
//!     .epsilon(1.0)
//!     .method(Method::ag_suggested())
//!     .seed(7)
//!     .publish()
//!     .unwrap();
//!
//! // The release is self-describing…
//! assert_eq!(release.method_kind(), Some(&Method::ag_suggested()));
//! // …and queryable through its compiled surface.
//! let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();
//! assert!(release.answer(&q).is_finite());
//! ```
//!
//! Everything the pipeline produces went through
//! [`Method::build_boxed`] — the same single construction path the
//! evaluation runner uses — so a method evaluated by the harness and a
//! method published to consumers are guaranteed to be the same code.

use std::hash::{BuildHasher, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

use dpgrid_geo::GeoDataset;

use crate::method::BoxedSynopsis;
use crate::release::ReleaseMetadata;
use crate::{Method, Release, Result};

/// A destination that takes ownership of published releases under a
/// caller-chosen key — the zero-copy handoff seam between the
/// publishing [`Pipeline`] and serving-side containers (a release
/// catalog, a test harness, a plain map).
///
/// [`Pipeline::publish_into`] moves the freshly built [`Release`]
/// straight into the sink: no clone, no re-serialisation, and the
/// release's lazily compiled surface cache travels with it.
pub trait ReleaseSink {
    /// Takes ownership of `release`, registering it under `key`.
    /// Accepting the same key again replaces (re-versions) the earlier
    /// release — sinks that version keys define how.
    fn accept_release(&mut self, key: String, release: Release);

    /// Withdraws the release under `key`, returning whether one was
    /// held — the retention seam: a compactor that merged fine epochs
    /// into a coarser tier evicts the fine keys through the same sink
    /// it published through.
    ///
    /// The default is a no-op returning `false`, so append-only sinks
    /// (logs, test collectors) stay correct without opting in.
    fn evict_release(&mut self, key: &str) -> bool {
        let _ = key;
        false
    }
}

/// The identity sink: collect published releases in insertion order.
impl ReleaseSink for Vec<(String, Release)> {
    fn accept_release(&mut self, key: String, release: Release) {
        self.push((key, release));
    }

    /// Removes every entry under `key` (duplicates included).
    fn evict_release(&mut self, key: &str) -> bool {
        let before = self.len();
        self.retain(|(k, _)| k != key);
        self.len() != before
    }
}

/// Keyed sink with last-write-wins semantics.
impl ReleaseSink for std::collections::HashMap<String, Release> {
    fn accept_release(&mut self, key: String, release: Release) {
        self.insert(key, release);
    }

    fn evict_release(&mut self, key: &str) -> bool {
        self.remove(key).is_some()
    }
}

/// Fluent builder for publishing a differentially private release of a
/// dataset.
///
/// Defaults: ε = 1.0, [`Method::ag_suggested`] (the paper's
/// recommended method), unseeded (fresh process-local entropy per
/// publish).
#[derive(Debug, Clone, Copy)]
#[must_use = "a Pipeline does nothing until `publish()` or `build()` is called"]
pub struct Pipeline<'a> {
    dataset: &'a GeoDataset,
    epsilon: f64,
    method: Method,
    seed: Option<u64>,
}

impl<'a> Pipeline<'a> {
    /// Starts a pipeline over `dataset` with the default ε = 1.0 and
    /// the paper's suggested adaptive grid.
    pub fn new(dataset: &'a GeoDataset) -> Self {
        Pipeline {
            dataset,
            epsilon: 1.0,
            method: Method::ag_suggested(),
            seed: None,
        }
    }

    /// Sets the total privacy budget ε the build may consume.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the synopsis method (see the [`Method`] registry).
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Seeds the build RNG, making the publish fully deterministic:
    /// the same dataset, ε, method and seed yield a byte-identical
    /// release.
    ///
    /// The seed is recorded in the release's [`ReleaseMetadata`].
    /// **A release whose seed is public is not private**: the noise
    /// can be regenerated and subtracted. Seed only what you publish
    /// to yourself — experiments, regression tests, reproducibility
    /// archives — never a production release.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Builds the synopsis and keeps it as an in-memory boxed
    /// [`crate::Synopsis`] without exporting a release — for callers
    /// that only want to answer queries locally.
    pub fn build(&self) -> Result<BoxedSynopsis> {
        let mut rng = StdRng::seed_from_u64(self.seed.unwrap_or_else(entropy_seed));
        self.method
            .build_boxed(self.dataset, self.epsilon, &mut rng)
    }

    /// Builds the synopsis and publishes it as a portable [`Release`]
    /// carrying typed metadata: the declarative method, its
    /// guideline-resolved parameters, the paper-notation label, ε, and
    /// (for seeded pipelines) the seed.
    pub fn publish(&self) -> Result<Release> {
        let mut rng = StdRng::seed_from_u64(self.seed.unwrap_or_else(entropy_seed));
        let synopsis = self
            .method
            .build_boxed(self.dataset, self.epsilon, &mut rng)?;
        let n = self.dataset.len();
        let metadata = ReleaseMetadata {
            method: Some(self.method),
            resolved: Some(self.method.resolved(n, self.epsilon)),
            label: self.method.label(n, self.epsilon),
            epsilon: self.epsilon,
            seed: self.seed,
            trust: crate::release::TrustModel::Central,
        };
        Ok(Release::from_synopsis_with_metadata(metadata, &synopsis))
    }

    /// Publishes and hands the release straight to `sink` under `key`
    /// — the zero-copy path into serving-side containers such as
    /// `dpgrid-serve`'s `Catalog`.
    ///
    /// ```
    /// use dpgrid_core::{Method, Pipeline};
    /// use dpgrid_geo::generators::PaperDataset;
    /// use std::collections::HashMap;
    ///
    /// let dataset = PaperDataset::Storage.generate_n(1, 2_000).unwrap();
    /// let mut sink: HashMap<String, dpgrid_core::Release> = HashMap::new();
    /// Pipeline::new(&dataset)
    ///     .method(Method::ug(8))
    ///     .seed(7)
    ///     .publish_into(&mut sink, "storage-v1")
    ///     .unwrap();
    /// assert!(sink.contains_key("storage-v1"));
    /// ```
    pub fn publish_into<S: ReleaseSink>(&self, sink: &mut S, key: impl Into<String>) -> Result<()> {
        let release = self.publish()?;
        sink.accept_release(key.into(), release);
        Ok(())
    }
}

/// Process-local entropy for unseeded publishes: `RandomState` is
/// randomly keyed per process, which is the only entropy source the
/// vendored offline `rand` stub environment guarantees. Two unseeded
/// publishes draw different hasher states and therefore different
/// noise.
fn entropy_seed() -> u64 {
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u64(0x5EED);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Synopsis;
    use dpgrid_geo::{generators, Domain, Rect};

    fn dataset() -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        generators::uniform(domain, 2_000, &mut rng)
    }

    #[test]
    fn seeded_publish_is_deterministic() {
        let ds = dataset();
        let publish = || {
            Pipeline::new(&ds)
                .epsilon(0.5)
                .method(Method::ug(8))
                .seed(42)
                .publish()
                .unwrap()
        };
        let (a, b) = (publish(), publish());
        let (mut ja, mut jb) = (Vec::new(), Vec::new());
        a.write_json(&mut ja).unwrap();
        b.write_json(&mut jb).unwrap();
        assert_eq!(ja, jb, "same seed must publish byte-identical JSON");
    }

    #[test]
    fn unseeded_publishes_differ() {
        let ds = dataset();
        let publish = || {
            Pipeline::new(&ds)
                .epsilon(0.5)
                .method(Method::ug(8))
                .publish()
                .unwrap()
        };
        let q = Rect::new(0.0, 0.0, 5.0, 5.0).unwrap();
        // Noise is continuous: two independent draws collide with
        // probability 0.
        assert_ne!(publish().answer(&q), publish().answer(&q));
    }

    #[test]
    fn metadata_records_method_resolution_and_seed() {
        let ds = dataset();
        let rel = Pipeline::new(&ds)
            .epsilon(1.0)
            .method(Method::ag_suggested())
            .seed(7)
            .publish()
            .unwrap();
        let md = rel.metadata();
        assert_eq!(md.method, Some(Method::ag_suggested()));
        assert_eq!(md.seed, Some(7));
        assert_eq!(md.epsilon, 1.0);
        // The resolved twin has the guideline hole filled.
        match md.resolved {
            Some(Method::Ag { m1: Some(m1), .. }) => assert!(m1 >= 1),
            other => panic!("expected resolved AG, got {other:?}"),
        }
        assert_eq!(md.label, rel.method());
        assert!(md.label.starts_with('A'));
    }

    #[test]
    fn unseeded_publish_records_no_seed() {
        let ds = dataset();
        let rel = Pipeline::new(&ds).method(Method::Flat).publish().unwrap();
        assert_eq!(rel.metadata().seed, None);
    }

    #[test]
    fn build_returns_queryable_synopsis() {
        let ds = dataset();
        let syn = Pipeline::new(&ds)
            .epsilon(2.0)
            .method(Method::KdHybrid)
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(syn.epsilon(), 2.0);
        let whole = Rect::new(0.0, 0.0, 10.0, 10.0).unwrap();
        assert!((syn.answer(&whole) - 2_000.0).abs() < 500.0);
    }

    #[test]
    fn publish_into_moves_releases_in_order() {
        let ds = dataset();
        let mut sink: Vec<(String, Release)> = Vec::new();
        for (key, seed) in [("a", 1u64), ("b", 2)] {
            Pipeline::new(&ds)
                .method(Method::ug(8))
                .seed(seed)
                .publish_into(&mut sink, key)
                .unwrap();
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[0].0, "a");
        assert_eq!(sink[1].0, "b");
        assert_eq!(sink[0].1.metadata().seed, Some(1));
        // The sink owns real releases, not copies of a shared one.
        let q = Rect::new(0.0, 0.0, 5.0, 5.0).unwrap();
        assert_ne!(sink[0].1.answer(&q), sink[1].1.answer(&q));
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let ds = dataset();
        assert!(Pipeline::new(&ds).epsilon(0.0).publish().is_err());
        assert!(Pipeline::new(&ds).epsilon(f64::NAN).publish().is_err());
    }
}
