//! The TCP frontend: one [`TcpServer`] facade over two transport
//! backends sharing one wire behavior.
//!
//! * **Multiplexed** (the default): the readiness-multiplexed event
//!   loop in [`crate::mux`] — a small worker pool, each worker an
//!   epoll/poll(2) run loop over nonblocking per-connection state
//!   machines. Idle connections cost nothing per tick, so one node
//!   holds tens of thousands of them.
//! * **Threaded**: one blocking OS thread per connection — the
//!   original transport, kept for comparison benchmarks and as the
//!   simplest-possible reference implementation of the wire behavior.
//!
//! Both backends own only transport concerns — accepting sockets,
//! framing (newline-delimited JSON v1, or length-prefixed binary v2
//! after a `Hello` negotiation), connection lifecycle, graceful
//! shutdown. Protocol work (decoding, validation, dispatch, error
//! mapping) is entirely `dpgrid_serve::wire`, so the two backends are
//! observationally identical on the wire; the acceptance suites run
//! against the default and pass unmodified against either.
//!
//! The engine's admission control remains the *global* backpressure
//! seam for both (an overloaded engine sheds typed `Overloaded`
//! frames); the multiplexed backend adds a *per-connection* seam — a
//! bounded outbound buffer that pauses a connection's dispatch when
//! its client stops reading (see [`crate::conn`]).

use std::io::{BufRead, BufReader, BufWriter, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dpgrid_serve::wire::binary;
use dpgrid_serve::{wire, QueryService, TransportStats};

use crate::counters::{Instrumented, TransportCounters};
use crate::error::Result;
use crate::mux::MuxServer;

/// How often parked connection reads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Upper bound on one request frame's size — the protocol-wide
/// [`wire::MAX_FRAME_BYTES`], shared with the client so senders refuse
/// oversized frames before this server has to slam the connection. A
/// connection whose frame grows past it without a newline is answered
/// with a typed `MalformedRequest` and closed — a newline-free stream
/// must not grow the server's buffer unboundedly.
const MAX_FRAME_BYTES: u64 = wire::MAX_FRAME_BYTES as u64;

/// Which transport backend a [`TcpServer`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// Readiness-multiplexed event loops (the default): scales to
    /// thousands of mostly-idle connections.
    #[default]
    Multiplexed,
    /// One blocking OS thread per connection: the reference
    /// transport, at its best with a handful of busy connections.
    Threaded,
}

/// A running TCP query server.
///
/// Dropping the handle shuts the server down gracefully: the listener
/// stops accepting, in-flight frames finish answering, connections
/// close, and every transport thread is joined. Use
/// [`TcpServer::shutdown`] to do the same explicitly.
#[derive(Debug)]
pub struct TcpServer {
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    Threaded(ThreadedServer),
    Mux(MuxServer),
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port — the bound
    /// address is [`TcpServer::local_addr`]) and starts serving
    /// `service` on the default backend
    /// ([`ServerMode::Multiplexed`]).
    pub fn bind<S>(service: Arc<S>, addr: impl ToSocketAddrs) -> Result<TcpServer>
    where
        S: QueryService + 'static,
    {
        TcpServer::bind_with_mode(service, addr, ServerMode::default())
    }

    /// Binds `addr` with an explicit transport backend.
    pub fn bind_with_mode<S>(
        service: Arc<S>,
        addr: impl ToSocketAddrs,
        mode: ServerMode,
    ) -> Result<TcpServer>
    where
        S: QueryService + 'static,
    {
        let backend = match mode {
            ServerMode::Multiplexed => Backend::Mux(MuxServer::bind(service, addr)?),
            ServerMode::Threaded => Backend::Threaded(ThreadedServer::bind(service, addr)?),
        };
        Ok(TcpServer { backend })
    }

    /// Binds a multiplexed server with an explicit worker count (the
    /// default sizes the pool to available parallelism, capped at 8).
    pub fn bind_with_workers<S>(
        service: Arc<S>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> Result<TcpServer>
    where
        S: QueryService + 'static,
    {
        Ok(TcpServer {
            backend: Backend::Mux(MuxServer::bind_with_workers(service, addr, workers)?),
        })
    }

    /// Which backend this server runs.
    pub fn mode(&self) -> ServerMode {
        match &self.backend {
            Backend::Threaded(_) => ServerMode::Threaded,
            Backend::Mux(_) => ServerMode::Multiplexed,
        }
    }

    /// The address the server actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        match &self.backend {
            Backend::Threaded(s) => s.local_addr(),
            Backend::Mux(s) => s.local_addr(),
        }
    }

    /// Frames answered since the server started (all connections).
    pub fn frames_served(&self) -> u64 {
        match &self.backend {
            Backend::Threaded(s) => s.frames_served(),
            Backend::Mux(s) => s.frames_served(),
        }
    }

    /// A snapshot of this server's socket-level counters — the same
    /// numbers the wire `Stats` response reports in
    /// [`dpgrid_serve::EngineStats::transport`].
    pub fn transport_stats(&self) -> TransportStats {
        match &self.backend {
            Backend::Threaded(s) => s.counters.snapshot(),
            Backend::Mux(s) => s.transport_stats(),
        }
    }

    /// Stops accepting, drains in-flight frames, closes connections,
    /// and joins every transport thread.
    pub fn shutdown(self) {
        match self.backend {
            Backend::Threaded(s) => s.shutdown(),
            Backend::Mux(s) => s.shutdown(),
        }
    }
}

/// One live connection: its worker thread plus a socket handle the
/// shutdown path uses to sever the connection (unblocking any stuck
/// blocking write) before joining the thread.
type Connection = (JoinHandle<()>, TcpStream);

/// The thread-per-connection backend.
#[derive(Debug)]
struct ThreadedServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<Connection>>>,
    counters: Arc<TransportCounters>,
}

impl ThreadedServer {
    fn bind<S>(service: Arc<S>, addr: impl ToSocketAddrs) -> Result<ThreadedServer>
    where
        S: QueryService + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<Connection>>> = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(TransportCounters::default());
        let service = Arc::new(Instrumented::new(service, Arc::clone(&counters)));

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else {
                        // Transient accept failures (EMFILE under
                        // connection floods, ECONNABORTED) come back
                        // immediately — back off briefly instead of
                        // busy-spinning the accept thread.
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    let Ok(socket) = stream.try_clone() else {
                        continue;
                    };
                    counters.add(&counters.accepted, 1);
                    counters.add(&counters.active, 1);
                    let service = Arc::clone(&service);
                    let conn_shutdown = Arc::clone(&shutdown);
                    let conn_counters = Arc::clone(&counters);
                    let conn_registry = Arc::clone(&connections);
                    let handle = std::thread::spawn(move || {
                        // Transport errors just end this connection.
                        let _ =
                            serve_connection(&stream, &*service, &conn_shutdown, &conn_counters);
                        conn_counters.active.fetch_sub(1, Ordering::Relaxed);
                        // Sever at TCP level, not just by dropping:
                        // the registry still holds a clone of this
                        // socket, and the peer must observe the close
                        // now — e.g. a client blocked writing a
                        // rejected oversized frame.
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        // Prune finished peers so a long-idle server
                        // does not pin a burst's worth of dead sockets
                        // and join handles until the next accept. Our
                        // own entry still reads as unfinished here; a
                        // later exit or accept collects it.
                        conn_registry
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .retain(|(h, _)| !h.is_finished());
                    });
                    let mut held = connections.lock().unwrap_or_else(|e| e.into_inner());
                    held.retain(|(h, _)| !h.is_finished());
                    held.push((handle, socket));
                }
            })
        };

        Ok(ThreadedServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections,
            counters,
        })
    }

    fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    fn frames_served(&self) -> u64 {
        self.counters.responses.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains and joins every connection thread, and
    /// joins the accept thread. In-flight frames finish answering;
    /// parked connections notice within the poll interval (100 ms).
    fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept with a throwaway connection; the
        // accept loop re-checks the flag before handling it. A
        // wildcard bind address (0.0.0.0 / ::) is not connectable, so
        // the wake goes to the same-family loopback at the bound port.
        let wake_addr = if self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = match self.addr {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let woke = TcpStream::connect_timeout(&wake_addr, Duration::from_secs(1)).is_ok();
        if let Some(handle) = self.accept_thread.take() {
            if woke {
                let _ = handle.join();
            }
            // If the wake connection could not be made (e.g. a
            // firewall forbids self-connects), the accept thread stays
            // parked in accept() with no portable way to interrupt it;
            // leaving it detached beats hanging shutdown forever — it
            // exits with the process, and the flag stops it from
            // serving any connection it might still accept.
        }
        let connections =
            std::mem::take(&mut *self.connections.lock().unwrap_or_else(|e| e.into_inner()));
        // Sever every socket before joining: a worker stuck in a
        // blocking write (its client stopped reading responses) only
        // unblocks when the connection dies — the read-timeout poll
        // cannot reach it.
        for (_, socket) in &connections {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        for (handle, _) in connections {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadedServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serves one connection: newline-delimited JSON request frames in,
/// response frames out, until EOF, a transport error, or shutdown —
/// or until a `Hello` frame negotiates protocol v2, after which the
/// same connection continues in [`serve_binary`].
///
/// Frames are read as raw bytes through a [`MAX_FRAME_BYTES`]-capped
/// `Take`, so a connection can neither grow the buffer unboundedly
/// with a newline-free stream nor lose bytes when a read timeout
/// lands inside a multibyte character (UTF-8 is only checked once a
/// complete line is assembled).
fn serve_connection<S: QueryService + ?Sized>(
    stream: &TcpStream,
    service: &S,
    shutdown: &AtomicBool,
    counters: &TransportCounters,
) -> std::io::Result<()> {
    // Frames are small and latency-bound: answer each immediately,
    // whichever codec the connection ends up speaking.
    stream.set_nodelay(true)?;
    // Reads time out so parked connections poll the shutdown flag.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(MAX_FRAME_BYTES);
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    // Complete frame.
                    counters.add(&counters.bytes_in, buf.len() as u64);
                    let upgraded = handle_raw_frame(service, &mut writer, counters, &buf)?;
                    buf.clear();
                    reader.set_limit(MAX_FRAME_BYTES);
                    if upgraded {
                        break;
                    }
                } else if reader.limit() == 0 {
                    // The frame hit the byte cap without a newline:
                    // reject it and drop the connection — resyncing on
                    // a stream this far gone is not worth it.
                    respond(
                        &mut writer,
                        counters,
                        wire::WireResponse::error(
                            0,
                            wire::WireError::new(
                                wire::ErrorCode::MalformedRequest,
                                format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                            ),
                        ),
                    )?;
                    return Ok(());
                } else {
                    // EOF (no newline arrived and the byte cap was not
                    // hit). A final frame missing only its trailing
                    // newline is answered before closing —
                    // deterministically, whether or not a read-timeout
                    // tick separated its bytes from the EOF (timeouts
                    // keep partial bytes in `buf`). An upgrade on the
                    // final frame is moot: the peer already closed.
                    if !buf.is_empty() {
                        counters.add(&counters.bytes_in, buf.len() as u64);
                        handle_raw_frame(service, &mut writer, counters, &buf)?;
                    }
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Timed out mid-wait; any partial frame bytes stay in
                // `buf` (byte reads lose nothing, even when the
                // timeout splits a multibyte character). Exit on
                // shutdown, else keep listening.
                if shutdown.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Negotiated up to binary. The ack left through the (per-frame
    // flushed) BufWriter, so nothing is buffered on the write side;
    // the BufReader keeps any bytes an optimistic client already sent.
    drop(writer);
    let mut reader = reader.into_inner();
    serve_binary(&mut reader, stream, service, shutdown, counters)
}

/// How one binary read ended.
enum Fill {
    /// The buffer was filled completely.
    Complete,
    /// EOF before the first byte — the peer closed between frames.
    CleanEof,
    /// EOF with the buffer partly filled — a truncated frame.
    TruncatedEof,
    /// The shutdown flag was raised while waiting.
    Shutdown,
}

/// Reads exactly `buf.len()` bytes, polling the shutdown flag on every
/// read-timeout tick (the socket's [`POLL_INTERVAL`] read timeout is
/// what makes blocking reads interruptible).
fn read_full(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> std::io::Result<Fill> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Fill::CleanEof
                } else {
                    Fill::TruncatedEof
                });
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(Fill::Shutdown);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Complete)
}

/// Serves the binary half of an upgraded connection: fixed-size
/// headers and length-prefixed payloads in, vectored header+payload
/// writes out, all through per-connection buffers that are reused
/// frame over frame (zero steady-state allocation).
///
/// Rejection policy mirrors the JSON loop's: violations that lose
/// byte framing (bad magic, foreign version, oversized length prefix,
/// truncated frame) get a typed error and the connection is closed;
/// a payload that decodes badly under intact framing gets a typed
/// error and the connection stays usable.
fn serve_binary<S: QueryService + ?Sized>(
    reader: &mut BufReader<TcpStream>,
    stream: &TcpStream,
    service: &S,
    shutdown: &AtomicBool,
    counters: &TransportCounters,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut header_buf = [0u8; binary::HEADER_BYTES];
    let mut payload: Vec<u8> = Vec::new();
    let mut out_payload: Vec<u8> = Vec::new();
    loop {
        match read_full(reader, &mut header_buf, shutdown)? {
            Fill::CleanEof | Fill::Shutdown => return Ok(()),
            Fill::TruncatedEof => {
                // Half a header can never be resynchronized; the peer
                // is gone anyway.
                return respond_binary(
                    &mut writer,
                    counters,
                    &wire::WireResponse::error(
                        0,
                        wire::WireError::new(
                            wire::ErrorCode::MalformedRequest,
                            "connection closed mid-header",
                        ),
                    ),
                    &mut out_payload,
                );
            }
            Fill::Complete => {}
        }
        let header = match binary::decode_header(&header_buf) {
            Ok(header) => header,
            Err(e) => {
                // Bad magic / foreign version / oversized length: byte
                // framing is lost, so reject typed and close.
                return respond_binary(
                    &mut writer,
                    counters,
                    &wire::WireResponse::error(0, e),
                    &mut out_payload,
                );
            }
        };
        payload.clear();
        payload.resize(header.payload_len, 0);
        if header.payload_len > 0 {
            match read_full(reader, &mut payload, shutdown)? {
                Fill::CleanEof | Fill::TruncatedEof => {
                    // The header promised more bytes than arrived.
                    return respond_binary(
                        &mut writer,
                        counters,
                        &wire::WireResponse::error(
                            header.id,
                            wire::WireError::new(
                                wire::ErrorCode::MalformedRequest,
                                "connection closed mid-payload",
                            ),
                        ),
                        &mut out_payload,
                    );
                }
                Fill::Shutdown => return Ok(()),
                Fill::Complete => {}
            }
        }
        counters.add(
            &counters.bytes_in,
            (binary::HEADER_BYTES + header.payload_len) as u64,
        );
        let response = match binary::decode_request(&header, &payload) {
            Ok(request) => {
                counters.add(&counters.frames_decoded, 1);
                wire::dispatch(service, request.id, request.body)
            }
            // Framing held (the declared payload arrived in full), so
            // a payload that decodes badly only fails its own frame.
            Err(e) => wire::WireResponse::error(header.id, e),
        };
        counters.count_report_ack(&response);
        respond_binary(&mut writer, counters, &response, &mut out_payload)?;
    }
}

/// Writes one binary response frame as a single vectored write
/// (header + payload, no concatenation copy) and counts it.
fn respond_binary(
    writer: &mut TcpStream,
    counters: &TransportCounters,
    response: &wire::WireResponse,
    payload: &mut Vec<u8>,
) -> std::io::Result<()> {
    counters.add(&counters.responses, 1);
    let frame_type = match binary::encode_response_payload(&response.body, payload) {
        Ok(frame_type) => frame_type,
        Err(_) => {
            // The response itself exceeds the frame cap (an enormous
            // batch of answers): the request was answerable but not
            // shippable, which is the server's problem — Internal.
            let oversized = wire::WireResponse::error(
                response.id,
                wire::WireError::new(
                    wire::ErrorCode::Internal,
                    "response exceeds the frame byte cap; split the batch",
                ),
            );
            binary::encode_response_payload(&oversized.body, payload)
                .expect("error frames are far below the frame cap")
        }
    };
    let header = binary::encode_header(frame_type, response.id, payload.len());
    counters.add(&counters.bytes_out, (header.len() + payload.len()) as u64);
    write_all_vectored(writer, &header, payload)
}

/// `write_all` over two buffers with one gather syscall per attempt,
/// restarting on partial writes without copying the buffers together.
fn write_all_vectored(writer: &mut TcpStream, head: &[u8], tail: &[u8]) -> std::io::Result<()> {
    let total = head.len() + tail.len();
    let mut written = 0;
    while written < total {
        let attempt = if written < head.len() {
            writer.write_vectored(&[IoSlice::new(&head[written..]), IoSlice::new(tail)])
        } else {
            writer.write(&tail[written - head.len()..])
        };
        match attempt {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Answers one raw JSON frame: UTF-8 check, blank-line tolerance,
/// protocol dispatch, framed reply. Returns whether the frame was a
/// `Hello` that negotiated the connection up to the binary codec —
/// this transport *can* switch framing, so it intercepts `Hello`
/// before [`wire::dispatch`] (whose own `Hello` arm conservatively
/// acks v1 for transports that cannot).
fn handle_raw_frame<S: QueryService + ?Sized>(
    service: &S,
    writer: &mut BufWriter<TcpStream>,
    counters: &TransportCounters,
    raw: &[u8],
) -> std::io::Result<bool> {
    let Ok(frame) = std::str::from_utf8(raw) else {
        respond(
            writer,
            counters,
            wire::WireResponse::error(
                0,
                wire::WireError::new(
                    wire::ErrorCode::MalformedRequest,
                    "frame is not valid UTF-8",
                ),
            ),
        )?;
        return Ok(false);
    };
    let frame = frame.trim_end_matches(['\r', '\n']);
    // Tolerate blank keep-alive lines.
    if frame.is_empty() {
        return Ok(false);
    }
    if let Some((id, client_max)) = wire::parse_hello(frame) {
        let version = wire::negotiate(client_max, binary::PROTOCOL_VERSION);
        respond(writer, counters, wire::hello_ack(id, version))?;
        return Ok(version == binary::PROTOCOL_VERSION);
    }
    let response = match wire::WireRequest::decode(frame) {
        Ok(request) => {
            counters.add(&counters.frames_decoded, 1);
            wire::dispatch(service, request.id, request.body)
        }
        Err(e) => wire::WireResponse::error(e.id, e.error),
    };
    counters.count_report_ack(&response);
    respond(writer, counters, response)?;
    Ok(false)
}

/// Writes one response frame and counts it (before the write, so the
/// total is visible by the time any client has read the response).
fn respond(
    writer: &mut BufWriter<TcpStream>,
    counters: &TransportCounters,
    response: wire::WireResponse,
) -> std::io::Result<()> {
    counters.add(&counters.responses, 1);
    let encoded = response.encode();
    counters.add(&counters.bytes_out, encoded.len() as u64 + 1);
    writer.write_all(encoded.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
