//! The release catalog: keyed, versioned releases plus a
//! memory-budgeted LRU of compiled surfaces.
//!
//! A [`Catalog`] owns [`Release`]s under string keys. Releases arrive
//! from memory ([`Catalog::insert`], or zero-copy from a publishing
//! pipeline via [`dpgrid_core::Pipeline::publish_into`]) or from a
//! directory of release JSON files ([`Catalog::load_dir`]). Inserting
//! under an existing key *re-versions* it: the version counter bumps
//! and the stale compiled surface is dropped.
//!
//! Compiled surfaces — the O(cells) indexes releases answer through —
//! are the memory-heavy part, so the catalog bounds **their total
//! resident bytes** ([`Catalog::with_memory_budget`], accounted through
//! [`dpgrid_core::CompiledSurface::memory_bytes`]): when a compile
//! pushes the resident sum past the budget, least-recently-used
//! surfaces are evicted ([`Release::evict_surface`]) until it fits.
//! Surfaces vary by orders of magnitude across releases, which is why
//! the budget is in bytes; the older *count* bound survives as a
//! deprecated shim ([`Catalog::with_capacity`]). Eviction is pure cache
//! management: leased [`SurfaceHandle`]s stay valid (the index is
//! reference-counted), and a later lookup of an evicted key recompiles
//! from the retained cells. A resident surface is never recompiled —
//! lookups lease clones of the same `Arc`.
//!
//! Lookups are two-phase so a catalog behind a lock never compiles
//! while holding it: [`Catalog::lease`] resolves warm hits or hands
//! out a [`ColdLease`], the caller runs [`ColdLease::compile`] outside
//! the lock (per-release `OnceLock` serialisation keeps it
//! exactly-once), and [`Catalog::note_compiled`] folds the new
//! resident surface into the LRU. [`Catalog::surface`] bundles both
//! phases for direct (unlocked) owners.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use dpgrid_core::{CompiledSurface, Release, ReleaseSink};
use serde::{Deserialize, Serialize};

use crate::error::{Result, ServeError};

/// Default bound on resident compiled surfaces for the deprecated
/// count-bounded constructor ([`Catalog::with_capacity`]).
pub const DEFAULT_SURFACE_CAPACITY: usize = 64;

/// Default resident-surface memory budget (256 MiB) used by
/// [`Catalog::new`]. Production catalogs should size this explicitly
/// with [`Catalog::with_memory_budget`].
pub const DEFAULT_MEMORY_BUDGET_BYTES: usize = 256 << 20;

/// Whether a surface lookup was served from the resident cache or had
/// to compile.
///
/// Serialisable so the cache state travels on the wire protocol (as
/// the strings `"Warm"` / `"Cold"`), making staleness and cache
/// behaviour observable by remote clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheState {
    /// The compiled surface was already resident.
    Warm,
    /// The surface was compiled (first touch, or refetch after
    /// eviction / re-versioning) during this lookup.
    Cold,
}

/// A leased compiled surface plus the lookup's provenance, as returned
/// by [`Catalog::surface`].
#[derive(Debug, Clone)]
pub struct SurfaceHandle {
    /// The shared compiled surface; valid even after the catalog
    /// evicts or replaces the release.
    pub surface: Arc<CompiledSurface>,
    /// Whether this lookup hit the resident cache.
    pub cache: CacheState,
    /// Version of the release answered (1 on first insert, bumped by
    /// every re-insert of the key).
    pub version: u64,
}

/// Point-in-time catalog counters (see [`Catalog::stats`]).
///
/// Serialisable: the serving layer exposes these over the wire
/// protocol's `Stats` request so operators can watch warm/cold ratios,
/// evictions and the resident-byte budget over the same connection
/// they query through. Unbounded limits serialise as `usize::MAX`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogStats {
    /// Releases currently held.
    pub releases: usize,
    /// Compiled surfaces currently resident.
    pub warm: usize,
    /// Residency count bound (`usize::MAX` when unbounded — the
    /// default for memory-budgeted catalogs).
    pub capacity: usize,
    /// Resident-surface byte budget (`usize::MAX` when unbounded —
    /// only via the deprecated count-capacity shim).
    pub budget_bytes: usize,
    /// Bytes of compiled surface currently resident, as accounted by
    /// [`dpgrid_core::CompiledSurface::memory_bytes`].
    pub resident_bytes: usize,
    /// Surface lookups served since creation.
    pub lookups: u64,
    /// Lookups that found the surface resident.
    pub warm_hits: u64,
    /// Surface compilations performed.
    pub compilations: u64,
    /// Surfaces evicted by the residency bounds.
    pub evictions: u64,
}

impl CatalogStats {
    /// All-zero counters: the identity of [`CatalogStats::merge`].
    pub fn zeroed() -> Self {
        CatalogStats::default()
    }

    /// Element-wise aggregation of two catalogs' counters — the exact
    /// stats of a tier holding both (a shard router sums its backends'
    /// catalogs this way). Counts and traffic add; the bounds
    /// (`capacity`, `budget_bytes`) add **saturating**, so one
    /// unbounded (`usize::MAX`) member keeps the aggregate unbounded
    /// instead of wrapping.
    #[must_use]
    pub fn merge(&self, other: &CatalogStats) -> CatalogStats {
        CatalogStats {
            releases: self.releases + other.releases,
            warm: self.warm + other.warm,
            capacity: self.capacity.saturating_add(other.capacity),
            budget_bytes: self.budget_bytes.saturating_add(other.budget_bytes),
            resident_bytes: self.resident_bytes + other.resident_bytes,
            lookups: self.lookups + other.lookups,
            warm_hits: self.warm_hits + other.warm_hits,
            compilations: self.compilations + other.compilations,
            evictions: self.evictions + other.evictions,
        }
    }
}

impl std::iter::Sum for CatalogStats {
    fn sum<I: Iterator<Item = CatalogStats>>(iter: I) -> Self {
        iter.fold(CatalogStats::zeroed(), |acc, s| acc.merge(&s))
    }
}

impl<'a> std::iter::Sum<&'a CatalogStats> for CatalogStats {
    fn sum<I: Iterator<Item = &'a CatalogStats>>(iter: I) -> Self {
        iter.fold(CatalogStats::zeroed(), |acc, s| acc.merge(s))
    }
}

/// A leased release awaiting its surface compilation — phase one of
/// the two-phase cold lookup (see [`Catalog::lease`]).
///
/// The holder compiles **outside** the catalog lock via
/// [`ColdLease::compile`] (the release's own `OnceLock` serialises
/// concurrent compiles of the same release), then reports back with
/// [`Catalog::note_compiled`] so the LRU can account for the new
/// resident surface.
#[derive(Debug, Clone)]
pub struct ColdLease {
    release: Arc<Release>,
    version: u64,
}

impl ColdLease {
    /// Compiles (or joins an in-flight compilation of) the release's
    /// surface. Run this without holding any catalog lock.
    pub fn compile(&self) -> SurfaceHandle {
        SurfaceHandle {
            surface: self.release.shared_surface(),
            cache: CacheState::Cold,
            version: self.version,
        }
    }

    /// Version of the leased release.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// One [`Catalog::lease`] outcome: resident surface or a cold lease to
/// compile outside the lock.
#[derive(Debug, Clone)]
pub enum Lease {
    /// The surface was resident; the handle is ready.
    Warm(SurfaceHandle),
    /// The surface must be compiled; see [`ColdLease`].
    Cold(ColdLease),
}

#[derive(Debug)]
struct CatalogEntry {
    /// Shared so cold compilations can run outside the catalog lock;
    /// the catalog itself holds the only long-lived reference (leases
    /// hold a second one just for the duration of a compile).
    release: Arc<Release>,
    version: u64,
    hits: u64,
    /// Version whose compilation was last counted (0 = none since the
    /// last insert/eviction) — keeps `compilations` exact when racing
    /// reporters or late `note_compiled` calls arrive for work the
    /// counter already recorded.
    counted_version: u64,
    /// Bytes this entry's resident surface contributes to the
    /// catalog-wide sum (0 = not currently accounted as resident).
    resident_bytes: usize,
}

/// Keyed, versioned releases with a memory-budgeted LRU of compiled
/// surfaces.
#[derive(Debug)]
pub struct Catalog {
    entries: HashMap<String, CatalogEntry>,
    /// Keys whose surfaces are resident, least-recently-used first.
    /// Catalogs hold few enough releases that the O(warm) touch is
    /// noise next to one surface compilation.
    lru: Vec<String>,
    /// Residency count bound (`usize::MAX` = unbounded).
    capacity: usize,
    /// Resident-surface byte budget (`usize::MAX` = unbounded).
    budget_bytes: usize,
    /// Current resident-surface byte total.
    resident_bytes: usize,
    /// Set whenever [`Catalog::release`] hands out a shared reference:
    /// the holder may compile a surface the catalog cannot observe, so
    /// the next bounds enforcement must sweep for unaccounted
    /// residency. `Cell` so the `&self` accessor can raise it; the
    /// catalog lives behind the engine's mutex, never shared `&self`
    /// across threads.
    escaped_release: std::cell::Cell<bool>,
    lookups: u64,
    warm_hits: u64,
    compilations: u64,
    evictions: u64,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog with the [`DEFAULT_MEMORY_BUDGET_BYTES`]
    /// resident-surface byte budget and no count bound.
    pub fn new() -> Self {
        Catalog::with_memory_budget(DEFAULT_MEMORY_BUDGET_BYTES)
    }

    /// An empty catalog keeping at most `budget_bytes` (≥ 1) of
    /// compiled surface resident, as accounted by
    /// [`dpgrid_core::CompiledSurface::memory_bytes`].
    ///
    /// The budget is enforced at every catalog operation, with one
    /// documented exception: the most-recently-used surface is never
    /// evicted (its lease is live — evicting it would free nothing
    /// while making the next lookup recompile), so a *single* surface
    /// larger than the whole budget stays resident alone.
    pub fn with_memory_budget(budget_bytes: usize) -> Self {
        Catalog::bounded(usize::MAX, budget_bytes.max(1))
    }

    /// An empty catalog keeping at most `capacity` (≥ 1) compiled
    /// surfaces resident, with no byte budget.
    #[deprecated(
        since = "0.1.0",
        note = "count bounds ignore how unevenly surfaces weigh; size catalogs in bytes with \
                `Catalog::with_memory_budget`"
    )]
    pub fn with_capacity(capacity: usize) -> Self {
        Catalog::bounded(capacity.max(1), usize::MAX)
    }

    fn bounded(capacity: usize, budget_bytes: usize) -> Self {
        Catalog {
            entries: HashMap::new(),
            lru: Vec::new(),
            capacity,
            budget_bytes,
            resident_bytes: 0,
            escaped_release: std::cell::Cell::new(false),
            lookups: 0,
            warm_hits: 0,
            compilations: 0,
            evictions: 0,
        }
    }

    /// Loads every `*.json` release in `dir` into a fresh catalog,
    /// keyed by file stem (see [`Catalog::load_dir`]).
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self> {
        let mut catalog = Catalog::new();
        catalog.load_dir(dir)?;
        Ok(catalog)
    }

    /// Loads every `*.json` file in `dir` as a release keyed by its
    /// file stem, in lexicographic order (so re-versioned dumps load
    /// deterministically). Returns the keys inserted.
    ///
    /// Each file goes through [`Release::load`], which re-validates the
    /// release invariants — a directory of untrusted dumps cannot
    /// smuggle malformed cells into the serving path.
    pub fn load_dir(&mut self, dir: impl AsRef<Path>) -> Result<Vec<String>> {
        let dir = dir.as_ref();
        let io_err = |e: std::io::Error| ServeError::Io {
            path: dir.to_path_buf(),
            source: e,
        };
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(io_err)?
            .collect::<std::io::Result<Vec<_>>>()
            .map_err(io_err)?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        let mut keys = Vec::with_capacity(paths.len());
        for path in paths {
            let stem = path.file_stem().and_then(|s| s.to_str()).ok_or_else(|| {
                ServeError::InvalidKey(format!(
                    "release file {} has a non-UTF-8 stem",
                    path.display()
                ))
            })?;
            // Name the offending file: a directory of dumps can hold
            // dozens of releases, and a bare serde error does not say
            // which one is bad.
            let release = Release::load(&path).map_err(|source| ServeError::Load {
                path: path.clone(),
                source,
            })?;
            self.insert(stem, release);
            keys.push(stem.to_string());
        }
        Ok(keys)
    }

    /// Inserts (or re-versions) `release` under `key`, returning the
    /// assigned version: 1 for a new key, previous + 1 when replacing.
    /// Replacing drops the stale compiled surface from the LRU. A
    /// release arriving *already compiled* (e.g. a clone of a warm
    /// release — clones share their surface) counts against the
    /// residency bounds immediately, so inserts cannot smuggle resident
    /// surfaces past the budget.
    pub fn insert(&mut self, key: impl Into<String>, release: Release) -> u64 {
        let key = key.into();
        let version = match self.entries.get(&key) {
            Some(old) => old.version + 1,
            None => 1,
        };
        self.lru.retain(|k| k != &key);
        let compiled = release.surface_is_compiled();
        if let Some(old) = self.entries.insert(
            key.clone(),
            CatalogEntry {
                release: Arc::new(release),
                version,
                hits: 0,
                counted_version: 0,
                resident_bytes: 0,
            },
        ) {
            // The replaced entry's surface (if resident) is gone with it.
            self.resident_bytes -= old.resident_bytes;
        }
        if compiled {
            self.mark_resident(&key);
        } else {
            // Inserts are also collection points for overflow left by
            // eviction attempts that had to defer (victims mid-compile
            // elsewhere) — the bounds must not wait for the next lookup.
            self.enforce_bounds();
        }
        version
    }

    /// Removes `key` and returns its release, if held.
    pub fn remove(&mut self, key: &str) -> Option<Release> {
        self.lru.retain(|k| k != key);
        self.entries.remove(key).map(|e| {
            self.resident_bytes -= e.resident_bytes;
            // Unshared in the common case; a clone (sharing the
            // compiled surface, copying cells) covers a remove racing
            // an in-flight cold lease.
            Arc::try_unwrap(e.release).unwrap_or_else(|arc| (*arc).clone())
        })
    }

    /// The release under `key`, if held. Does not touch the LRU.
    ///
    /// The returned reference can compile the release's surface behind
    /// the catalog's back (answering through it fills the shared
    /// `OnceLock`); the next catalog operation sweeps such surfaces
    /// into the byte budget, so the escape hatch cannot smuggle
    /// residency past the bound.
    pub fn release(&self, key: &str) -> Option<&Release> {
        let entry = self.entries.get(key)?;
        self.escaped_release.set(true);
        Some(entry.release.as_ref())
    }

    /// The current version of `key`, if held.
    pub fn version(&self, key: &str) -> Option<u64> {
        self.entries.get(key).map(|e| e.version)
    }

    /// Surface lookups served for `key` since it was (re-)inserted.
    pub fn hits(&self, key: &str) -> Option<u64> {
        self.entries.get(key).map(|e| e.hits)
    }

    /// Phase one of a surface lookup: lease without compiling.
    ///
    /// A warm key returns its resident surface (and becomes most
    /// recently used); a cold key returns a [`ColdLease`] for the
    /// caller to [`ColdLease::compile`] **after releasing any lock
    /// around this catalog** — compilation is O(cells·log cells) and
    /// must not serialise unrelated lookups — and then report back
    /// through [`Catalog::note_compiled`]. [`Catalog::surface`] wraps
    /// the two phases for callers that hold the catalog directly.
    pub fn lease(&mut self, key: &str) -> Result<Lease> {
        let entry = self
            .entries
            .get_mut(key)
            .ok_or_else(|| ServeError::UnknownRelease(key.to_string()))?;
        entry.hits += 1;
        self.lookups += 1;
        if entry.release.surface_is_compiled() {
            let handle = SurfaceHandle {
                surface: entry.release.shared_surface(),
                cache: CacheState::Warm,
                version: entry.version,
            };
            self.warm_hits += 1;
            self.mark_resident(key);
            Ok(Lease::Warm(handle))
        } else {
            Ok(Lease::Cold(ColdLease {
                release: Arc::clone(&entry.release),
                version: entry.version,
            }))
        }
    }

    /// Phase two of a cold lookup: accounts for a surface compiled
    /// outside the lock (resident bytes, LRU order, eviction
    /// pressure).
    ///
    /// No-op when the key was meanwhile removed or re-versioned — the
    /// compiled surface then lives only as long as its leases. When
    /// several lookups raced on the same cold key, the release's
    /// `OnceLock` compiled once and exactly one reporter counts the
    /// compilation (tracked per version, so a warm lease slipping in
    /// between the compile and this report cannot suppress the count).
    pub fn note_compiled(&mut self, key: &str, version: u64) {
        let Some(entry) = self.entries.get_mut(key) else {
            return;
        };
        if entry.version != version || !entry.release.surface_is_compiled() {
            return;
        }
        if entry.counted_version != version {
            entry.counted_version = version;
            self.compilations += 1;
        }
        self.mark_resident(key);
    }

    /// Leases the compiled surface for `key`, compiling inline if it
    /// is not resident — both lookup phases in one call, for callers
    /// that own the catalog directly (no lock to hold open).
    pub fn surface(&mut self, key: &str) -> Result<SurfaceHandle> {
        match self.lease(key)? {
            Lease::Warm(handle) => Ok(handle),
            Lease::Cold(lease) => {
                let handle = lease.compile();
                self.note_compiled(key, handle.version);
                Ok(handle)
            }
        }
    }

    /// Accounts `key`'s resident surface bytes (once per residency),
    /// marks it most recently used and enforces the residency bounds.
    fn mark_resident(&mut self, key: &str) {
        if let Some(entry) = self.entries.get_mut(key) {
            if entry.resident_bytes == 0 && entry.release.surface_is_compiled() {
                let bytes = entry.release.shared_surface().memory_bytes();
                entry.resident_bytes = bytes;
                self.resident_bytes += bytes;
            }
        }
        if self.lru.last().map(String::as_str) != Some(key) {
            self.lru.retain(|k| k != key);
            self.lru.push(key.to_string());
        }
        self.enforce_bounds();
    }

    /// Accounts surfaces compiled *out of band* — through the shared
    /// reference [`Catalog::release`] hands out, whose `OnceLock`
    /// compile the catalog cannot intercept — so no code path smuggles
    /// resident bytes past the budget. Collected keys enter the LRU at
    /// the least-recently-used end: the catalog never served a lookup
    /// for them, so they are the first legitimate victims.
    ///
    /// The O(releases) scan runs only when a [`Catalog::release`]
    /// reference actually escaped since the last sweep, so the serving
    /// hot path (pure lease traffic) never pays it. Entries with an
    /// outstanding lease `Arc` (a [`ColdLease`] between compile and
    /// [`Catalog::note_compiled`]) are skipped: that compile is
    /// in-band and its own report will account it as most recently
    /// used.
    fn collect_out_of_band(&mut self) {
        if !self.escaped_release.replace(false) {
            return;
        }
        let resident_bytes = &mut self.resident_bytes;
        let mut collected: Vec<String> = Vec::new();
        for (key, entry) in &mut self.entries {
            if entry.resident_bytes == 0
                && Arc::strong_count(&entry.release) == 1
                && entry.release.surface_is_compiled()
            {
                let bytes = entry.release.shared_surface().memory_bytes();
                entry.resident_bytes = bytes;
                *resident_bytes += bytes;
                collected.push(key.clone());
            }
        }
        collected.retain(|key| !self.lru.contains(key));
        self.lru.splice(0..0, collected);
    }

    /// Evicts least-recently-used surfaces until both residency bounds
    /// (count and bytes) hold, sparing the most-recently-used key — it
    /// is the surface a live lease is answering through, so evicting
    /// it would free nothing. A victim whose release is mid-compile
    /// elsewhere (its `Arc` is leased) is skipped for the same reason;
    /// deferred victims leave transient overflow, and every caller —
    /// lookups *and* inserts — retries the sweep, so the bounds are
    /// restored by whichever catalog operation comes next.
    fn enforce_bounds(&mut self) {
        self.collect_out_of_band();
        let mut victim = 0;
        while (self.lru.len() > self.capacity || self.resident_bytes > self.budget_bytes)
            && victim + 1 < self.lru.len()
        {
            let evicted = match self.entries.get_mut(&self.lru[victim]) {
                Some(entry) => match Arc::get_mut(&mut entry.release) {
                    Some(release) => {
                        release.evict_surface();
                        self.resident_bytes -= entry.resident_bytes;
                        entry.resident_bytes = 0;
                        // A later recompile of this same version is new
                        // work; let it count again.
                        entry.counted_version = 0;
                        true
                    }
                    None => false,
                },
                // LRU keys always have entries; stay safe if not.
                None => true,
            };
            if evicted {
                self.lru.remove(victim);
                self.evictions += 1;
            } else {
                victim += 1;
            }
        }
    }

    /// Number of releases held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog holds no releases.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `key` is held.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// All keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.entries.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Number of compiled surfaces currently resident.
    pub fn warm_len(&self) -> usize {
        self.lru.len()
    }

    /// The residency count bound (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The resident-surface byte budget (`usize::MAX` when unbounded).
    pub fn memory_budget(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes of compiled surface currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Sweeps any out-of-band compiles (surfaces filled through
    /// [`Catalog::release`] references) into the byte budget and
    /// enforces the residency bounds — without waiting for the next
    /// lookup or insert to do it. Call before reading
    /// [`Catalog::stats`] when the counters must reflect escape-hatch
    /// activity; the query engine does this on every stats read.
    pub fn reconcile(&mut self) {
        self.enforce_bounds();
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CatalogStats {
        CatalogStats {
            releases: self.entries.len(),
            warm: self.lru.len(),
            capacity: self.capacity,
            budget_bytes: self.budget_bytes,
            resident_bytes: self.resident_bytes,
            lookups: self.lookups,
            warm_hits: self.warm_hits,
            compilations: self.compilations,
            evictions: self.evictions,
        }
    }
}

/// Zero-copy handoff from [`dpgrid_core::Pipeline::publish_into`].
impl ReleaseSink for Catalog {
    fn accept_release(&mut self, key: String, release: Release) {
        self.insert(key, release);
    }

    /// Removes `key` (and de-accounts its resident surface) — the
    /// retention seam compactors evict expired epoch releases through.
    fn evict_release(&mut self, key: &str) -> bool {
        self.remove(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_core::{Method, Pipeline, Synopsis};
    use dpgrid_geo::generators::PaperDataset;
    use dpgrid_geo::Rect;

    fn release(seed: u64, m: usize) -> Release {
        let ds = PaperDataset::Storage.generate_n(seed, 1_500).unwrap();
        Pipeline::new(&ds)
            .method(Method::ug(m))
            .seed(seed)
            .publish()
            .unwrap()
    }

    /// Resident bytes of one freshly compiled m×m release surface.
    fn surface_bytes(seed: u64, m: usize) -> usize {
        let rel = release(seed, m);
        rel.shared_surface().memory_bytes()
    }

    #[test]
    fn insert_versions_and_lookup() {
        let mut catalog = Catalog::new();
        assert!(catalog.is_empty());
        assert_eq!(catalog.insert("a", release(1, 8)), 1);
        assert_eq!(catalog.insert("b", release(2, 8)), 1);
        assert_eq!(catalog.insert("a", release(3, 8)), 2);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.keys(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(catalog.version("a"), Some(2));
        assert_eq!(catalog.version("c"), None);
        assert!(matches!(
            catalog.surface("missing"),
            Err(ServeError::UnknownRelease(_))
        ));
    }

    #[test]
    fn warm_surfaces_are_shared_not_recompiled() {
        let mut catalog = Catalog::new();
        catalog.insert("a", release(1, 16));
        let first = catalog.surface("a").unwrap();
        assert_eq!(first.cache, CacheState::Cold);
        let second = catalog.surface("a").unwrap();
        assert_eq!(second.cache, CacheState::Warm);
        assert!(Arc::ptr_eq(&first.surface, &second.surface));
        assert_eq!(catalog.hits("a"), Some(2));
        let stats = catalog.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.compilations, 1);
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_bytes, first.surface.memory_bytes());
    }

    #[test]
    #[allow(deprecated)]
    fn count_capacity_shim_evicts_past_capacity_and_leases_stay_valid() {
        let mut catalog = Catalog::with_capacity(2);
        for (key, seed) in [("a", 1u64), ("b", 2), ("c", 3)] {
            catalog.insert(key, release(seed, 8));
        }
        let a = catalog.surface("a").unwrap();
        catalog.surface("b").unwrap();
        assert_eq!(catalog.warm_len(), 2);
        // Touch "a" so "b" is the LRU victim when "c" compiles.
        catalog.surface("a").unwrap();
        catalog.surface("c").unwrap();
        assert_eq!(catalog.warm_len(), 2);
        assert_eq!(catalog.stats().evictions, 1);
        assert!(catalog
            .release("b")
            .is_some_and(|r| !r.surface_is_compiled()));
        assert!(catalog
            .release("a")
            .is_some_and(Release::surface_is_compiled));
        // "a" is still resident: a new lookup leases the same index.
        assert!(Arc::ptr_eq(
            &a.surface,
            &catalog.surface("a").unwrap().surface
        ));
        // The evicted key recompiles on next touch (evicting "c", the
        // new LRU victim, in turn); the old lease answers regardless.
        assert_eq!(catalog.surface("b").unwrap().cache, CacheState::Cold);
        assert_eq!(catalog.stats().evictions, 2);
        assert!(catalog
            .release("c")
            .is_some_and(|r| !r.surface_is_compiled()));
        let q = Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap();
        assert!(a.surface.answer(&q).is_finite());
    }

    #[test]
    fn memory_budget_bounds_resident_bytes() {
        // Budget sized to hold two 8×8 surfaces but not three.
        let one = surface_bytes(1, 8);
        let budget = one * 2 + one / 2;
        let mut catalog = Catalog::with_memory_budget(budget);
        for (key, seed) in [("a", 1u64), ("b", 2), ("c", 3)] {
            catalog.insert(key, release(seed, 8));
        }
        for key in ["a", "b", "c", "a", "c", "b"] {
            catalog.surface(key).unwrap();
            let stats = catalog.stats();
            assert!(
                stats.resident_bytes <= budget,
                "resident {} exceeds budget {budget}",
                stats.resident_bytes
            );
        }
        assert!(catalog.stats().evictions >= 2, "budget had to evict");
        assert_eq!(catalog.memory_budget(), budget);
        // Evicted keys recompile on demand and answer identically.
        let q = Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap();
        let direct = catalog.release("a").unwrap().answer_linear_scan(&q);
        let served = catalog.surface("a").unwrap().surface.answer(&q);
        assert!((served - direct).abs() <= 1e-9 * (1.0 + direct.abs()));
    }

    #[test]
    fn oversized_surface_stays_resident_alone() {
        // One surface larger than the whole budget: the MRU exemption
        // keeps it resident (evicting it frees nothing — the lease
        // holds the Arc), but everything else is evicted around it.
        let mut catalog = Catalog::with_memory_budget(1);
        catalog.insert("big", release(1, 16));
        catalog.insert("small", release(2, 8));
        catalog.surface("small").unwrap();
        catalog.surface("big").unwrap();
        assert_eq!(catalog.warm_len(), 1);
        assert!(catalog
            .release("big")
            .is_some_and(Release::surface_is_compiled));
        assert!(catalog
            .release("small")
            .is_some_and(|r| !r.surface_is_compiled()));
    }

    #[test]
    fn out_of_band_compiles_are_collected_into_the_budget() {
        // `Catalog::release` hands out a shared reference whose
        // `OnceLock` compile the catalog cannot see happen; the next
        // catalog operation must collect those surfaces into the
        // budget instead of letting them stay resident unaccounted.
        let one = surface_bytes(1, 8);
        let budget = one * 2 + one / 2;
        let mut catalog = Catalog::with_memory_budget(budget);
        for (key, seed) in [("a", 1u64), ("b", 2), ("c", 3)] {
            catalog.insert(key, release(seed, 8));
        }
        let q = Rect::new(-100.0, 20.0, -90.0, 30.0).unwrap();
        for key in ["a", "b", "c"] {
            catalog.release(key).unwrap().answer(&q);
        }
        // Any budget-relevant operation sweeps the smuggled surfaces
        // in and enforces the bound.
        catalog.surface("c").unwrap();
        let stats = catalog.stats();
        assert!(
            stats.resident_bytes <= budget,
            "resident {} exceeds budget {budget}",
            stats.resident_bytes
        );
        assert!(stats.evictions >= 1, "collection had to evict");
        // The never-leased keys were the victims, not the one the
        // catalog actually served.
        assert!(catalog
            .release("c")
            .is_some_and(Release::surface_is_compiled));
    }

    #[test]
    fn precompiled_inserts_count_against_the_budget() {
        // A release can arrive already compiled (clones share their
        // surface); the budget must account for it at insert time, not
        // let it bypass the bound until first lookup.
        let one = surface_bytes(1, 8);
        let mut catalog = Catalog::with_memory_budget(one * 2 + one / 2);
        for (key, seed) in [("a", 1u64), ("b", 2), ("c", 3)] {
            let rel = release(seed, 8);
            rel.answer(&Rect::new(-100.0, 20.0, -90.0, 30.0).unwrap());
            assert!(rel.surface_is_compiled());
            catalog.insert(key, rel);
        }
        assert_eq!(catalog.warm_len(), 2, "budget enforced at insert");
        assert_eq!(catalog.stats().evictions, 1);
        assert!(catalog
            .release("a")
            .is_some_and(|r| !r.surface_is_compiled()));
        // The registered surfaces really are warm on first lookup.
        assert_eq!(catalog.surface("c").unwrap().cache, CacheState::Warm);
        assert_eq!(catalog.surface("a").unwrap().cache, CacheState::Cold);
    }

    #[test]
    fn two_phase_lease_compiles_outside_and_reports_back() {
        let mut catalog = Catalog::new();
        catalog.insert("a", release(1, 16));
        let Lease::Cold(cold) = catalog.lease("a").unwrap() else {
            panic!("first lookup must be cold");
        };
        // Nothing resident until the compile is reported back.
        assert_eq!(catalog.warm_len(), 0);
        assert_eq!(catalog.resident_bytes(), 0);
        let handle = cold.compile();
        assert_eq!(handle.cache, CacheState::Cold);
        assert_eq!(handle.version, 1);
        catalog.note_compiled("a", handle.version);
        assert_eq!(catalog.warm_len(), 1);
        assert_eq!(catalog.resident_bytes(), handle.surface.memory_bytes());
        assert_eq!(catalog.stats().compilations, 1);
        // A racing second reporter does not double-count.
        catalog.note_compiled("a", handle.version);
        assert_eq!(catalog.stats().compilations, 1);
        assert_eq!(catalog.resident_bytes(), handle.surface.memory_bytes());
        assert!(matches!(catalog.lease("a").unwrap(), Lease::Warm(_)));
        // A stale report (key re-versioned meanwhile) is a no-op.
        catalog.insert("a", release(9, 16));
        catalog.note_compiled("a", handle.version);
        assert_eq!(catalog.warm_len(), 0);
        assert_eq!(catalog.resident_bytes(), 0);
    }

    #[test]
    fn reinsert_drops_stale_surface_and_bumps_version() {
        let mut catalog = Catalog::new();
        catalog.insert("a", release(1, 8));
        let v1 = catalog.surface("a").unwrap();
        assert_eq!(v1.version, 1);
        catalog.insert("a", release(9, 8));
        assert_eq!(catalog.resident_bytes(), 0, "stale surface deaccounted");
        let v2 = catalog.surface("a").unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(v2.cache, CacheState::Cold);
        assert!(!Arc::ptr_eq(&v1.surface, &v2.surface));
        // Per-key hit counters reset with the new version.
        assert_eq!(catalog.hits("a"), Some(1));
    }

    #[test]
    fn remove_deaccounts_resident_bytes() {
        let mut catalog = Catalog::new();
        catalog.insert("a", release(1, 8));
        catalog.insert("b", release(2, 8));
        catalog.surface("a").unwrap();
        catalog.surface("b").unwrap();
        let before = catalog.resident_bytes();
        let removed = catalog.remove("a").unwrap();
        assert!(removed.surface_is_compiled());
        assert!(catalog.resident_bytes() < before);
        assert_eq!(catalog.warm_len(), 1);
        assert!(catalog.remove("a").is_none());
    }

    #[test]
    fn publish_into_lands_in_catalog() {
        let ds = PaperDataset::Storage.generate_n(7, 1_500).unwrap();
        let mut catalog = Catalog::new();
        Pipeline::new(&ds)
            .method(Method::ug(8))
            .seed(7)
            .publish_into(&mut catalog, "storage")
            .unwrap();
        assert!(catalog.contains("storage"));
        assert_eq!(catalog.version("storage"), Some(1));
        let handle = catalog.surface("storage").unwrap();
        let q = Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap();
        let direct = catalog.release("storage").unwrap().answer(&q);
        assert_eq!(handle.surface.answer(&q), direct);
    }

    #[test]
    fn load_dir_roundtrips_releases() {
        let dir = std::env::temp_dir().join("dpgrid_catalog_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rel_a = release(1, 8);
        let rel_b = release(2, 16);
        rel_a.save(dir.join("alpha.json")).unwrap();
        rel_b.save(dir.join("beta.json")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let mut catalog = Catalog::from_dir(&dir).unwrap();
        assert_eq!(
            catalog.keys(),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        let q = Rect::new(-130.0, 10.0, -70.0, 50.0).unwrap();
        let handle = catalog.surface("alpha").unwrap();
        assert!((handle.surface.answer(&q) - rel_a.answer(&q)).abs() <= 1e-9);

        // A malformed file fails the load loudly — and the error names
        // the offending path, not just the serde failure.
        std::fs::write(dir.join("zz_bad.json"), "{not json").unwrap();
        let err = Catalog::from_dir(&dir).unwrap_err();
        assert!(matches!(err, ServeError::Load { ref path, .. } if path.ends_with("zz_bad.json")));
        assert!(
            err.to_string().contains("zz_bad.json"),
            "message must name the file: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
