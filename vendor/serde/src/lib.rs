//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the small serde surface the workspace relies on:
//! `#[derive(Serialize, Deserialize)]` plus the trait machinery needed
//! by the vendored `serde_json`.
//!
//! Instead of upstream serde's visitor architecture, serialization goes
//! through an owned [`Value`] tree using serde's JSON data model
//! conventions (structs as objects, tuples as arrays, externally tagged
//! enums). That keeps the derive macro tiny while remaining
//! wire-compatible with real `serde_json` for every type in this
//! workspace, so releases written today stay loadable if the real crates
//! are ever swapped back in.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always carried as `f64`, like `serde_json`'s lossy
    /// mode; every number this workspace serialises fits).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object. Insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short human-readable description of the value's kind, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting shape mismatches as [`Error`]s.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            // Real serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|n| n as f32)
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n)
                        if n.fract() == 0.0
                            && *n >= <$t>::MIN as f64
                            && *n <= <$t>::MAX as f64 =>
                    {
                        Ok(*n as $t)
                    }
                    Value::Num(n) => Err(Error::msg(format!(
                        "number {n} is not a valid {}",
                        stringify!($t)
                    ))),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = String::deserialize_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                let a = v
                    .as_arr()
                    .ok_or_else(|| Error::msg(format!("expected array, got {}", v.kind())))?;
                if a.len() != ARITY {
                    return Err(Error::msg(format!(
                        "expected {ARITY}-tuple, got array of {}",
                        a.len()
                    )));
                }
                Ok(($($name::deserialize_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

// ---------------------------------------------------------------------
// Derive-macro support
// ---------------------------------------------------------------------

/// Finds the first of `names` present in `obj` and deserialises it,
/// or `None` when no name matches: the shared core of every struct
/// field lookup the derive macro emits.
fn lookup<T: Deserialize>(
    obj: &[(String, Value)],
    names: &[&str],
    ty: &str,
) -> Option<Result<T, Error>> {
    for name in names {
        if let Some((_, v)) = obj.iter().find(|(k, _)| k == name) {
            return Some(
                T::deserialize_value(v).map_err(|e| Error::msg(format!("{ty}.{name}: {e}"))),
            );
        }
    }
    None
}

/// Looks up and deserialises a struct field; used by the derive macro.
pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    field_aliased(obj, &[key], ty)
}

/// Looks up a struct field under any of `names` (declaration name
/// first, then its `#[serde(alias = "…")]` names, in order); used by
/// the derive macro for aliased fields.
pub fn field_aliased<T: Deserialize>(
    obj: &[(String, Value)],
    names: &[&str],
    ty: &str,
) -> Result<T, Error> {
    lookup(obj, names, ty).unwrap_or_else(|| {
        Err(Error::msg(format!(
            "{ty}: missing field `{}`",
            names.first().copied().unwrap_or("?")
        )))
    })
}

/// [`field_aliased`] for `#[serde(default)]` fields: a key that is
/// present under none of `names` yields `T::default()` instead of an
/// error (matching upstream serde's `default` semantics).
pub fn field_aliased_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    names: &[&str],
    ty: &str,
) -> Result<T, Error> {
    lookup(obj, names, ty).unwrap_or_else(|| Ok(T::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::deserialize_value(&1.5f64.serialize_value()), Ok(1.5));
        assert_eq!(usize::deserialize_value(&7usize.serialize_value()), Ok(7));
        assert!(usize::deserialize_value(&Value::Num(1.5)).is_err());
        assert_eq!(
            Option::<f64>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, 2usize), (3.0, 4)];
        let round: Vec<(f64, usize)> =
            Deserialize::deserialize_value(&v.serialize_value()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn field_lookup_reports_type_and_name() {
        let obj = vec![("a".to_string(), Value::Num(1.0))];
        let err = field::<f64>(&obj, "b", "Demo").unwrap_err();
        assert!(err.to_string().contains("Demo"));
        assert!(err.to_string().contains("`b`"));
    }
}
