//! The blocking client: one TCP connection speaking the wire protocol.
//!
//! A [`TcpClient`] issues one request frame at a time and blocks for
//! the matching response (ids are checked, so a desynchronised
//! connection fails loudly instead of mismatching answers). It is
//! deliberately not `Sync` — open one client per thread; the server
//! side is built for many cheap connections.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use dpgrid_geo::Rect;
use dpgrid_serve::wire::{
    RequestBody, ResponseBody, WireError, WireQuery, WireRect, WireRequest, WireResponse,
};
use dpgrid_serve::{EngineStats, QueryRequest, QueryResponse};

use crate::error::{NetError, Result};

/// A blocking connection to a [`crate::TcpServer`] (or anything else
/// speaking the wire protocol over newline-delimited JSON).
#[derive(Debug)]
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl TcpClient {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Round-trips a liveness check.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetches the server's engine counters.
    pub fn stats(&mut self) -> Result<EngineStats> {
        match self.call(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Answers `rects` against the release under `key`. Server-side
    /// failures (unknown key, invalid rect, overload) come back as
    /// [`NetError::Server`] with a stable error code.
    pub fn query(&mut self, key: &str, rects: &[Rect]) -> Result<QueryResponse> {
        let query = WireQuery {
            release_key: key.to_string(),
            rects: rects.iter().map(WireRect::from).collect(),
        };
        match self.call(RequestBody::Query(query))? {
            ResponseBody::Answers(answers) => Ok(answers.into_response()),
            other => Err(unexpected("Answers", &other)),
        }
    }

    /// Answers several requests (possibly across releases) in one
    /// round trip. The outer `Result` is the transport; each inner
    /// result is that query's own outcome, failures isolated exactly
    /// as in [`dpgrid_serve::QueryEngine::answer_batch`].
    pub fn query_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<std::result::Result<QueryResponse, WireError>>> {
        let queries = requests.iter().map(WireQuery::from_request).collect();
        match self.call(RequestBody::Batch(queries))? {
            ResponseBody::Batch(outcomes) => {
                if outcomes.len() != requests.len() {
                    return Err(NetError::Protocol(format!(
                        "batch of {} queries got {} outcomes",
                        requests.len(),
                        outcomes.len()
                    )));
                }
                Ok(outcomes
                    .into_iter()
                    .map(|outcome| match outcome {
                        dpgrid_serve::wire::WireOutcome::Answered(a) => Ok(a.into_response()),
                        dpgrid_serve::wire::WireOutcome::Failed(e) => Err(e),
                    })
                    .collect())
            }
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Sends one frame and blocks for its response, enforcing id
    /// correlation and unwrapping whole-frame errors.
    fn call(&mut self, body: RequestBody) -> Result<ResponseBody> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = WireRequest::new(id, body).encode();
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;

        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(NetError::Disconnected);
        }
        let response = WireResponse::decode(line.trim_end_matches(['\r', '\n']))
            .map_err(|e| NetError::Protocol(e.error.to_string()))?;
        // Typed server errors win over the id check: a frame the
        // server could not attribute (oversized, unparseable) is
        // reported under id 0, and this client is strictly
        // request-response, so any error frame belongs to the
        // in-flight request.
        match response.body {
            ResponseBody::Error(e) => Err(NetError::Server(e)),
            body if response.id == id => Ok(body),
            _ => Err(NetError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            ))),
        }
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> NetError {
    NetError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
