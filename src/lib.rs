//! # dpgrid — differentially private grids for geospatial data
//!
//! A faithful, production-quality Rust implementation of
//! *"Differentially Private Grids for Geospatial Data"* (Qardaji, Yang,
//! Li — ICDE 2013), including the paper's two contributions — the
//! **Uniform Grid (UG)** method with its grid-size guideline and the
//! **Adaptive Grid (AG)** method — plus every baseline the paper compares
//! against (KD-standard, KD-hybrid, b-ary hierarchies with constrained
//! inference, and the Privelet wavelet method) and the full evaluation
//! harness that regenerates the paper's tables and figures.
//!
//! This crate is a facade: it re-exports the workspace members under
//! stable module names.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`geo`] | `dpgrid-geo` | points, rectangles, domains, datasets, dense histograms, synthetic generators, compiled cell indexes (`cell_index`) |
//! | [`mech`] | `dpgrid-mech` | Laplace / geometric / exponential mechanisms, budget accounting |
//! | [`core`] | `dpgrid-core` | the `Synopsis` trait, UG, AG, the guidelines, error analysis, the compiled query surface (`surface`) and the portable `Release` format |
//! | [`baselines`] | `dpgrid-baselines` | KD-trees, hierarchies, constrained inference, Privelet |
//! | [`eval`] | `dpgrid-eval` | query workloads, error metrics, the experiment harness |
//!
//! # Serving architecture: the compiled query surface
//!
//! Synopses are *built* by their methods but *served* through one seam:
//! [`core::CompiledSurface`]. Any synopsis's exported cells compile —
//! once — into either a dense lattice + summed-area table (grid-shaped
//! partitions: O(log cells) per query via two edge binary searches) or
//! a sorted row-band / interval index (irregular partitions such as KD
//! trees). A [`core::Release`] compiles lazily on first answer, so a
//! JSON release loaded from disk is exactly as fast to query as the
//! in-memory type that produced it. Batch endpoints
//! (`Synopsis::answer_all`) chunk large query slices across scoped
//! threads; caching, sharding and async frontends are expected to plug
//! into this surface rather than into individual methods.
//!
//! # Quickstart
//!
//! ```
//! use dpgrid::prelude::*;
//! use rand::SeedableRng;
//!
//! // A small synthetic dataset (checkin-like distribution).
//! let dataset = PaperDataset::Storage.generate_n(42, 2_000).unwrap();
//!
//! // Release an adaptive-grid synopsis with a total budget of ε = 1.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let synopsis = AdaptiveGrid::build(&dataset, &AgConfig::guideline(1.0), &mut rng).unwrap();
//!
//! // Answer a rectangle count query from the private synopsis.
//! let query = Rect::new(-100.0, 30.0, -80.0, 45.0).unwrap();
//! let estimate = synopsis.answer(&query);
//! let truth = dataset.count_in(&query) as f64;
//! assert!((estimate - truth).abs() < truth.max(100.0));
//! ```

pub use dpgrid_baselines as baselines;
pub use dpgrid_core as core;
pub use dpgrid_eval as eval;
pub use dpgrid_geo as geo;
pub use dpgrid_mech as mech;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use dpgrid_baselines::{
        HierarchicalGrid, HierarchyConfig, KdConfig, KdHybrid, KdStandard, Privelet, PriveletConfig,
    };
    pub use dpgrid_core::{
        AdaptiveGrid, AgConfig, GridSize, NoiseKind, Release, Synopsis, UgConfig, UniformGrid,
    };
    pub use dpgrid_geo::generators::PaperDataset;
    pub use dpgrid_geo::{DenseGrid, Domain, GeoDataset, Point, PointIndex, Rect};
    pub use dpgrid_mech::{LaplaceMechanism, PrivacyBudget};
}
