//! The paper's primary contribution: differentially private grid synopses.
//!
//! This crate implements §IV of *"Differentially Private Grids for
//! Geospatial Data"* (Qardaji, Yang, Li — ICDE 2013):
//!
//! * [`UniformGrid`] — the **UG** method: an equi-width `m × m` grid with
//!   independent Laplace-noised cell counts, and **Guideline 1** for
//!   choosing `m = √(N·ε/c)` ([`guidelines::guideline1`]);
//! * [`AdaptiveGrid`] — the **AG** method: a coarse `m₁ × m₁` first-level
//!   grid (budget `α·ε`) whose cells are re-partitioned into `m₂ × m₂`
//!   leaves according to their noisy counts (**Guideline 2**,
//!   [`guidelines::guideline2`]), glued together with two-level
//!   constrained inference ([`inference`]);
//! * the [`Synopsis`] and [`Build`] traits — the release format:
//!   rectangle count queries answered from noisy cells under the
//!   uniformity assumption, and the uniform construction seam (both
//!   defined in `dpgrid-geo`, re-exported here);
//! * the [`Method`] registry — every buildable method of the paper
//!   (UG, AG, the baselines and their ablation variants) as one typed
//!   enum, with [`Method::build_boxed`] as the single construction
//!   path;
//! * the [`Pipeline`] — the one-stop publishing API:
//!   `Pipeline::new(&data).epsilon(1.0).method(Method::ag_suggested())
//!   .seed(7).publish()?` builds a synopsis and exports it as a
//!   [`Release`] carrying typed [`ReleaseMetadata`];
//! * the [`surface`] module — the compiled query surface:
//!   [`CompiledSurface`] turns any synopsis's exported cells into an
//!   O(log cells) index, so published releases answer as fast as the
//!   native in-memory types;
//! * [`analysis`] — the paper's closed-form error model (§II, §IV-C) as
//!   executable code, including the dimensionality analysis of why
//!   hierarchies stop paying off beyond one dimension;
//! * [`synthetic`] — regenerating a synthetic dataset from a released
//!   synopsis (the second use-case of §II-B).
//!
//! # Privacy accounting
//!
//! Per-cell count queries have L1 sensitivity 1 and the cells of one grid
//! partition the domain, so noising an entire grid level consumes its ε
//! once (parallel composition). UG spends the whole budget on its single
//! level; AG splits sequentially: `α·ε` for level 1, `(1−α)·ε` for level
//! 2. Both are tracked through [`dpgrid_mech::PrivacyBudget`] so
//! over-spending is a hard error.
//!
//! # Example
//!
//! ```
//! use dpgrid_core::{AdaptiveGrid, AgConfig, Synopsis, UgConfig, UniformGrid};
//! use dpgrid_geo::{generators::PaperDataset, Rect};
//! use rand::SeedableRng;
//!
//! let data = PaperDataset::Storage.generate_n(1, 3_000).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//!
//! let ug = UniformGrid::build(&data, &UgConfig::guideline(1.0), &mut rng).unwrap();
//! let ag = AdaptiveGrid::build(&data, &AgConfig::guideline(1.0), &mut rng).unwrap();
//!
//! let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();
//! let truth = data.count_in(&q) as f64;
//! // Both synopses estimate the count from noisy cells.
//! assert!((ug.answer(&q) - truth).abs() < 1_000.0);
//! assert!((ag.answer(&q) - truth).abs() < 1_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive_grid;
pub mod analysis;
mod error;
pub mod guidelines;
pub mod inference;
pub mod method;
mod noise;
pub mod pipeline;
pub mod release;
pub mod routing;
pub mod surface;
pub mod synthetic;
pub mod temporal;
mod uniform_grid;

pub use adaptive_grid::{AdaptiveGrid, AgCellInfo, AgConfig};
pub use error::CoreError;
pub use guidelines::{GridSize, NEstimate};
pub use method::Method;
pub use noise::{CountNoise, NoiseKind};
pub use pipeline::{Pipeline, ReleaseSink};
pub use release::{Release, ReleaseMetadata, TrustModel};
pub use routing::{rendezvous_route, rendezvous_score, ShardedSink};
pub use surface::{CompiledSurface, SurfaceKind};
pub use temporal::{
    epoch_key, merge_releases, parse_epoch_key, parse_epoch_key_strict, EpochKeyError, EpochLayout,
    EpochRange,
};
pub use uniform_grid::{UgConfig, UniformGrid};

/// The release-format traits, re-exported from the substrate crate
/// (where they moved so that core and the baselines can both implement
/// them without depending on each other).
pub use dpgrid_geo::{Build, Synopsis};

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
