//! Synopsis construction time per method (§IV-C efficiency claims).
//!
//! The paper argues UG needs a single pass over the data, AG two passes,
//! while recursive-partitioning methods pay one pass per tree level plus
//! expensive split selection. These benches quantify that on a 100 k
//! point landmark-shaped dataset.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dpgrid_baselines::{
    HierarchicalGrid, HierarchyConfig, KdConfig, KdHybrid, KdStandard, Privelet, PriveletConfig,
};
use dpgrid_bench::{bench_dataset, bench_rng};
use dpgrid_core::{AdaptiveGrid, AgConfig, UgConfig, UniformGrid};

const N: usize = 100_000;
const EPS: f64 = 1.0;

fn bench_builds(c: &mut Criterion) {
    let dataset = bench_dataset(N);
    let mut group = c.benchmark_group("build");
    group.sample_size(10);

    group.bench_function("ug_guideline", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| UniformGrid::build(&dataset, &UgConfig::guideline(EPS), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("ag_guideline", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| AdaptiveGrid::build(&dataset, &AgConfig::guideline(EPS), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("privelet_256", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| Privelet::build(&dataset, &PriveletConfig::new(EPS, 256), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("hierarchy_h4_2_base256", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| {
                HierarchicalGrid::build(&dataset, &HierarchyConfig::new(EPS, 256, 4, 2), &mut rng)
                    .unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("kd_standard", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| KdStandard::build(&dataset, &KdConfig::new(EPS), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("kd_hybrid", |b| {
        b.iter_batched(
            bench_rng,
            |mut rng| KdHybrid::build(&dataset, &KdConfig::new(EPS), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
