//! Local-DP ingestion for dpgrid: the **front door** that grows a
//! served geospatial release without the server ever holding raw
//! points.
//!
//! The paper's pipeline (and everything the rest of this workspace
//! serves) is *central* DP: a trusted curator holds the dataset and
//! noises grid counts before publishing. This crate implements the
//! complementary *local* trust model on the same grids: each user
//! perturbs their own grid cell on-device with a frequency oracle
//! ([`dpgrid_mech::Grr`] or [`dpgrid_mech::Oue`]), uploads only the
//! perturbed report, and the collector debiases the aggregated tallies
//! into a per-cell estimate — the LDP analogue of the paper's UG
//! release, published under the same epoch-key grammar and served by
//! the same read stack.
//!
//! * [`ReportCollector`] — bounded per-epoch accumulators (flat `u64`
//!   tally vectors, no per-report allocation), all-or-nothing batch
//!   folding with typed rejections ([`LdpError`]), and epoch sealing:
//!   charge the epoch's ε through [`dpgrid_mech::BudgetSchedule`]
//!   (exactly once), debias, publish as an ordinary
//!   [`dpgrid_core::Release`] tagged
//!   [`dpgrid_core::TrustModel::Local`].
//! * [`CollectingService`] — wraps any [`dpgrid_serve::QueryService`]
//!   and exposes the collector through
//!   [`dpgrid_serve::QueryService::reports`], so the wire protocol's
//!   `Report` kind flows into it on the same connections that answer
//!   queries.
//! * [`accumulate`] — the aggregation hot path as free functions
//!   (validate-then-fold over flat slices), shared by the collector
//!   and the benchmark suite.
//!
//! # Trust-model caveat
//!
//! An LDP release answers the same range queries as a central one but
//! under a much noisier estimator (per-cell variance grows with the
//! user count under OUE, and with both users and domain size under
//! GRR), and its guarantee is *per user per epoch* rather than
//! per-dataset. Sealed releases carry
//! [`dpgrid_core::TrustModel::Local`] in their metadata so consumers
//! can tell the two apart; nothing else about serving changes.
//!
//! # Example
//!
//! ```
//! use dpgrid_geo::Domain;
//! use dpgrid_ldp::{CollectorConfig, ReportCollector};
//! use dpgrid_mech::{BudgetSchedule, FrequencyOracle, Grr, LocalReport};
//! use dpgrid_serve::{ReportBatch, ReportPayload};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
//! let schedule = BudgetSchedule::uniform(2.0, 4).unwrap();
//! let mut collector = ReportCollector::new(
//!     CollectorConfig::new("taxi", domain, 8, 8, schedule).unwrap(),
//! )
//! .unwrap();
//!
//! // 200 users perturb their true cell on-device at the epoch's ε.
//! let eps = collector.open_epsilon().unwrap();
//! let oracle = Grr::new(64, eps).unwrap();
//! let mut rng = StdRng::seed_from_u64(7);
//! let reports: Vec<u32> = (0..200)
//!     .map(|i| {
//!         let LocalReport::Cell(c) = oracle.perturb(i % 64, &mut rng).unwrap() else {
//!             unreachable!()
//!         };
//!         c
//!     })
//!     .collect();
//!
//! // The collector folds the batch and seals the epoch into a release.
//! collector
//!     .submit(&ReportBatch {
//!         keyspace: "taxi".into(),
//!         epoch: 0,
//!         epsilon: eps,
//!         cells: 64,
//!         payload: ReportPayload::Grr(reports),
//!     })
//!     .unwrap();
//! let mut published = Vec::new();
//! let summary = collector.publish_open_epoch(&mut published).unwrap();
//! assert_eq!(summary.key, "taxi@epoch:0");
//! assert_eq!(summary.grr_reports, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulate;
mod collector;
mod error;
mod service;

pub use collector::{
    CollectorConfig, ReportCollector, SealSummary, SealedEpoch, DEFAULT_EPOCH_CAPACITY,
};
pub use error::LdpError;
pub use service::CollectingService;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LdpError>;
