//! The temporal loop end to end: ingest a timestamped point stream,
//! let epochs close into per-epoch DP releases under a budget
//! schedule, compact the oldest tier, and answer sliding-window
//! queries — checking every windowed answer against the per-epoch
//! sums it must equal.
//!
//! ```sh
//! cargo run --release --example streaming_window
//! ```

use dpgrid::core::{merge_releases, EpochLayout, EpochRange};
use dpgrid::prelude::*;
use dpgrid::stream::{Compactor, StreamIngestor};
use std::collections::BTreeMap;

fn main() {
    // 1. A stream ingestor: one-minute epochs, a total budget of
    //    ε = 1 split uniformly over an 8-epoch horizon, publishing
    //    into a serving catalog as epochs close.
    let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
    let layout = EpochLayout::new(0.0, 60.0).unwrap();
    let schedule = BudgetSchedule::uniform(1.0, 8).unwrap();
    let mut catalog = Catalog::new();
    let mut ingestor = StreamIngestor::new("taxi", domain, layout, schedule)
        .expect("keyspace is non-empty")
        .with_seed(7);

    // 2. Ingest six epochs of timestamped points. The event-time
    //    watermark seals each epoch as the next one starts; each seal
    //    spends that epoch's ε share and publishes one release under
    //    the key `taxi@epoch:{i}`.
    for epoch in 0..6u64 {
        for i in 0..200u64 {
            let x = 0.05 + ((i as f64 * 7.3 + epoch as f64 * 1.7) % 9.9);
            let y = 0.05 + ((i as f64 * 3.1 + epoch as f64 * 4.9) % 9.9);
            let t = epoch as f64 * 60.0 + (i % 59) as f64;
            for receipt in ingestor
                .push(Point::new(x, y), t, &mut catalog)
                .expect("in-order points ingest cleanly")
            {
                println!(
                    "sealed epoch {:>2} -> {} (ε = {:.4}, {} points)",
                    receipt.epoch, receipt.key, receipt.epsilon, receipt.points
                );
            }
        }
    }
    // Flush the final epoch (nothing later will advance the watermark).
    for receipt in ingestor.flush(&mut catalog).expect("flush publishes") {
        println!(
            "flushed epoch {:>2} -> {} (ε = {:.4}, {} points)",
            receipt.epoch, receipt.key, receipt.epsilon, receipt.points
        );
    }
    let fine: BTreeMap<u64, Release> = ingestor.retained_fine().clone();
    let spent = ingestor.schedule().spent();
    println!(
        "published {} epochs, ledger ε = {spent:.4} of {:.4}\n",
        fine.len(),
        ingestor.schedule().total()
    );

    // 3. Windowed queries against the serving engine equal the sums of
    //    the per-epoch surfaces they cover — post-processing, exact.
    let engine = QueryEngine::new(catalog);
    let rect = Rect::new(1.25, 2.5, 7.75, 8.5).unwrap();
    for (start, end) in [(0u64, 6u64), (1, 4), (4, 5)] {
        let query = WindowQuery::new("taxi", start, end, vec![rect]).expect("non-empty window");
        let answer = answer_window(&engine, &query).expect("window is covered");
        let reference: f64 = (start..end).map(|e| fine[&e].answer(&rect)).sum();
        assert!((answer.answers[0] - reference).abs() <= 1e-9 * (1.0 + reference.abs()));
        println!(
            "window [{start},{end}): {:>9.3} == Σ per-epoch {:>9.3}  (covered {:?})",
            answer.answers[0],
            reference,
            answer
                .covered
                .iter()
                .map(|r| format!("[{},{})", r.start, r.end))
                .collect::<Vec<_>>()
        );
    }

    // 4. Compact the oldest epochs into a coarser tier (privacy-free:
    //    merging released surfaces is post-processing) and show the
    //    window still answering — coverage visibly widens to the tier.
    let mut sink_view = engine;
    let tiers = Compactor::new(2, 3)
        .expect("tier length ≥ 2")
        .compact(&mut ingestor, &mut sink_view)
        .expect("compaction publishes before evicting");
    for tier in &tiers {
        println!(
            "\ncompacted epochs {:?} -> {} (ε = {:.4})",
            tier.epochs, tier.key, tier.epsilon
        );
    }
    let merged = merge_releases("reference", &[&fine[&0], &fine[&1]]).unwrap();
    let query = WindowQuery::new("taxi", 1, 3, vec![rect]).expect("non-empty window");
    let answer = answer_window(&sink_view, &query).expect("tier covers the window");
    let reference = merged.answer(&rect) + fine[&2].answer(&rect);
    assert!((answer.answers[0] - reference).abs() <= 1e-9 * (1.0 + reference.abs()));
    assert_eq!(
        answer.covered,
        vec![EpochRange::new(0, 2).unwrap(), EpochRange::single(2)]
    );
    println!(
        "window [1,3) after compaction: {:>9.3} == merged tier + epoch 2 {:>9.3}",
        answer.answers[0], reference
    );
}
