//! The nonblocking per-connection state machine — the *dispatch*
//! third of the poller / run-loop / dispatch seam.
//!
//! One [`MuxConn`] owns everything a connection is: its socket, the
//! codec it has negotiated (every connection starts in JSON v1 and
//! may upgrade to binary v2 via `Hello`, exactly like the threaded
//! server), a reassembly buffer for partially-read frames, and a
//! bounded outbound queue of encoded responses. It never blocks: the
//! run loop calls [`MuxConn::on_ready`] with the socket's readiness
//! and gets back what the connection wants to wait for next.
//!
//! # Wire-behavior parity
//!
//! This state machine reproduces the threaded server's connection
//! semantics bit for bit — the acceptance suites pin them:
//!
//! * JSON frames that are not UTF-8, or do not parse, are answered
//!   with a typed `MalformedRequest` and the connection survives;
//!   blank lines are tolerated as keep-alives.
//! * A frame growing past [`wire::MAX_FRAME_BYTES`] without a newline
//!   is answered typed and the connection closes.
//! * A binary header that loses byte framing (bad magic, foreign
//!   version, over-cap length prefix) is answered typed under id 0
//!   and the connection closes — without ever buffering the claimed
//!   payload. A payload that decodes badly under intact framing fails
//!   only its own frame.
//! * EOF inside a frame is answered before closing: a JSON final
//!   frame missing its newline is served; a binary frame cut
//!   mid-header/mid-payload gets the matching typed error.
//!
//! # Backpressure
//!
//! Responses queue in per-connection buffers written with vectored,
//! `WouldBlock`-aware writes. When the queue crosses
//! [`HIGH_WATER`], the connection **pauses**: buffered input stops
//! being dispatched and read interest is dropped, so the kernel's
//! receive window fills and the client's sends stall — and no new
//! requests from this connection reach the engine (whose admission
//! control guards global overload; the pause guards per-connection
//! memory). Dispatch resumes once the queue drains to [`LOW_WATER`].
//! The pause is a *soft* bound: an in-progress response is always
//! queued whole, so the queue peaks below `HIGH_WATER` plus one
//! maximum frame.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;

use dpgrid_serve::wire::{self, binary};
use dpgrid_serve::QueryService;

use crate::counters::TransportCounters;
use crate::poll::Interest;

/// Pause dispatching a connection's input once this many unsent
/// response bytes are queued.
pub(crate) const HIGH_WATER: usize = 1 << 20;

/// Resume once the queue drains below this.
pub(crate) const LOW_WATER: usize = HIGH_WATER / 2;

/// One read syscall's worth of input.
const READ_CHUNK: usize = 64 * 1024;

/// Gather at most this many queued frames per write syscall.
const MAX_IOVECS: usize = 16;

/// Keep at most this many drained frame buffers for reuse.
const SPARE_BUFFERS: usize = 8;

const MAX_FRAME_BYTES: usize = wire::MAX_FRAME_BYTES;

/// Which codec the connection currently speaks.
enum Codec {
    Json,
    Binary,
}

/// What a connection wants from the poller after an [`on_ready`]
/// pass, or that it is finished.
///
/// [`on_ready`]: MuxConn::on_ready
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Keep watching with this interest.
    Open(Interest),
    /// Deregister, drop, close.
    Closed,
}

/// One multiplexed connection's complete state.
pub(crate) struct MuxConn {
    stream: TcpStream,
    codec: Codec,
    /// Unconsumed input: partial frames under reassembly (and, right
    /// after an upgrade, binary frames an optimistic client sent
    /// before reading the `Hello` ack).
    in_buf: Vec<u8>,
    /// Where the next newline scan resumes (JSON mode) — bytes before
    /// this are known newline-free, so a slowloris connection costs
    /// one scan per byte, not one scan of the whole frame per byte.
    scan_from: usize,
    /// Encoded, unsent response frames, oldest first.
    out: VecDeque<Vec<u8>>,
    /// How much of `out.front()` is already written.
    front_written: usize,
    /// Total unsent bytes across `out`.
    out_bytes: usize,
    /// Drained frame buffers kept for reuse (capacity recycling).
    spare: Vec<Vec<u8>>,
    /// Dispatch is paused: the outbound queue crossed [`HIGH_WATER`].
    paused: bool,
    /// The peer half-closed; no more input will arrive.
    peer_eof: bool,
    /// Flush what is queued, then close.
    closing: bool,
}

enum ReadOutcome {
    Data,
    WouldBlock,
    Eof,
}

impl MuxConn {
    /// Wraps an accepted socket. The caller has already made it
    /// nonblocking and disabled Nagle.
    pub(crate) fn new(stream: TcpStream) -> Self {
        MuxConn {
            stream,
            codec: Codec::Json,
            in_buf: Vec::new(),
            scan_from: 0,
            out: VecDeque::new(),
            front_written: 0,
            out_bytes: 0,
            spare: Vec::new(),
            paused: false,
            peer_eof: false,
            closing: false,
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// The interest this connection currently needs (used at
    /// registration time and compared against after every pass).
    pub(crate) fn interest(&self) -> Interest {
        Interest {
            read: !self.closing && !self.paused && !self.peer_eof,
            write: self.out_bytes > 0,
        }
    }

    /// One readiness pass: flush what the socket will take, read what
    /// it has, dispatch every complete frame, repeat until nothing
    /// can make progress. Returns what to wait for next.
    pub(crate) fn on_ready<S: QueryService + ?Sized>(
        &mut self,
        service: &S,
        counters: &TransportCounters,
    ) -> ConnState {
        if self.pump(service, counters).is_err() {
            return ConnState::Closed;
        }
        if self.closing && self.out_bytes == 0 {
            return ConnState::Closed;
        }
        ConnState::Open(self.interest())
    }

    /// The progress loop. `Err(())` means the connection died at the
    /// transport level (reset, unexpected write failure) and should be
    /// dropped without ceremony.
    fn pump<S: QueryService + ?Sized>(
        &mut self,
        service: &S,
        counters: &TransportCounters,
    ) -> Result<(), ()> {
        loop {
            self.flush(counters)?;
            if self.paused && self.out_bytes <= LOW_WATER {
                self.paused = false;
            }
            if self.closing || self.paused {
                return Ok(());
            }
            self.process_input(service, counters)?;
            if self.closing || self.paused {
                // Re-enter: flush the newly queued responses, and on
                // a drain-below-low-water resume buffered input — a
                // client that already sent everything gets no more
                // readiness events to finish the job for us.
                continue;
            }
            if self.peer_eof {
                self.finish_eof(service, counters)?;
                continue;
            }
            match self.read_some(counters)? {
                ReadOutcome::Data => continue,
                ReadOutcome::Eof => {
                    self.peer_eof = true;
                    continue;
                }
                ReadOutcome::WouldBlock => {
                    self.flush(counters)?;
                    if self.paused && self.out_bytes <= LOW_WATER {
                        self.paused = false;
                        continue;
                    }
                    return Ok(());
                }
            }
        }
    }

    // --- socket I/O --------------------------------------------------

    /// One nonblocking read into the reassembly buffer.
    fn read_some(&mut self, counters: &TransportCounters) -> Result<ReadOutcome, ()> {
        let old_len = self.in_buf.len();
        self.in_buf.resize(old_len + READ_CHUNK, 0);
        loop {
            match (&self.stream).read(&mut self.in_buf[old_len..]) {
                Ok(0) => {
                    self.in_buf.truncate(old_len);
                    return Ok(ReadOutcome::Eof);
                }
                Ok(n) => {
                    self.in_buf.truncate(old_len + n);
                    counters.add(&counters.bytes_in, n as u64);
                    return Ok(ReadOutcome::Data);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.in_buf.truncate(old_len);
                    return Ok(ReadOutcome::WouldBlock);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.in_buf.truncate(old_len);
                    return Err(());
                }
            }
        }
    }

    /// Writes queued frames with gathered, `WouldBlock`-aware vectored
    /// writes until the queue drains or the socket refuses more.
    fn flush(&mut self, counters: &TransportCounters) -> Result<(), ()> {
        while self.out_bytes > 0 {
            let mut iovecs: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOVECS.min(self.out.len()));
            for (i, frame) in self.out.iter().take(MAX_IOVECS).enumerate() {
                let start = if i == 0 { self.front_written } else { 0 };
                iovecs.push(IoSlice::new(&frame[start..]));
            }
            match (&self.stream).write_vectored(&iovecs) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    counters.add(&counters.bytes_out, n as u64);
                    self.consume_out(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    counters.add(&counters.write_stalls, 1);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        Ok(())
    }

    /// Accounts `n` written bytes, recycling fully-sent frames.
    fn consume_out(&mut self, mut n: usize) {
        self.out_bytes -= n;
        while n > 0 {
            let front_len = self.out.front().expect("bytes imply frames").len();
            let remaining = front_len - self.front_written;
            if n < remaining {
                self.front_written += n;
                return;
            }
            n -= remaining;
            self.front_written = 0;
            let mut done = self.out.pop_front().expect("checked nonempty");
            if self.spare.len() < SPARE_BUFFERS {
                done.clear();
                self.spare.push(done);
            }
        }
    }

    // --- frame processing --------------------------------------------

    /// Dispatches every complete frame already in `in_buf`, stopping
    /// on a partial frame, a pause, or a close.
    fn process_input<S: QueryService + ?Sized>(
        &mut self,
        service: &S,
        counters: &TransportCounters,
    ) -> Result<(), ()> {
        loop {
            if self.paused || self.closing {
                return Ok(());
            }
            match self.codec {
                Codec::Json => {
                    let Some(nl) = self.in_buf[self.scan_from..]
                        .iter()
                        .position(|&b| b == b'\n')
                        .map(|i| self.scan_from + i)
                    else {
                        self.scan_from = self.in_buf.len();
                        if self.in_buf.len() >= MAX_FRAME_BYTES {
                            // A newline-free stream must not grow this
                            // buffer unboundedly — same cap, same
                            // message, same close as the threaded path.
                            self.reject_and_close(
                                wire::WireResponse::error(
                                    0,
                                    wire::WireError::new(
                                        wire::ErrorCode::MalformedRequest,
                                        format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                                    ),
                                ),
                                counters,
                            );
                        }
                        return Ok(());
                    };
                    let line: Vec<u8> = self.in_buf.drain(..=nl).collect();
                    self.scan_from = 0;
                    self.handle_json_frame(&line, service, counters);
                }
                Codec::Binary => {
                    if self.in_buf.len() < binary::HEADER_BYTES {
                        return Ok(());
                    }
                    let header_bytes: &[u8; binary::HEADER_BYTES] = self.in_buf
                        [..binary::HEADER_BYTES]
                        .try_into()
                        .expect("length checked");
                    let header = match binary::decode_header(header_bytes) {
                        Ok(header) => header,
                        Err(e) => {
                            // Byte framing is lost (bad magic, foreign
                            // version, over-cap length): typed reject
                            // under id 0, close — and never buffer the
                            // claimed payload.
                            self.reject_and_close(wire::WireResponse::error(0, e), counters);
                            return Ok(());
                        }
                    };
                    let total = binary::HEADER_BYTES + header.payload_len;
                    if self.in_buf.len() < total {
                        return Ok(());
                    }
                    let response = match binary::decode_request(
                        &header,
                        &self.in_buf[binary::HEADER_BYTES..total],
                    ) {
                        Ok(request) => {
                            counters.add(&counters.frames_decoded, 1);
                            wire::dispatch(service, request.id, request.body)
                        }
                        // Framing held; only this frame fails.
                        Err(e) => wire::WireResponse::error(header.id, e),
                    };
                    counters.count_report_ack(&response);
                    self.in_buf.drain(..total);
                    self.respond_binary(&response, counters);
                }
            }
        }
    }

    /// One raw JSON line: UTF-8 check, blank-line tolerance, `Hello`
    /// interception (this transport *can* switch framing), protocol
    /// dispatch.
    fn handle_json_frame<S: QueryService + ?Sized>(
        &mut self,
        raw: &[u8],
        service: &S,
        counters: &TransportCounters,
    ) {
        let Ok(frame) = std::str::from_utf8(raw) else {
            self.respond_json(
                &wire::WireResponse::error(
                    0,
                    wire::WireError::new(
                        wire::ErrorCode::MalformedRequest,
                        "frame is not valid UTF-8",
                    ),
                ),
                counters,
            );
            return;
        };
        let frame = frame.trim_end_matches(['\r', '\n']);
        if frame.is_empty() {
            return;
        }
        if let Some((id, client_max)) = wire::parse_hello(frame) {
            let version = wire::negotiate(client_max, binary::PROTOCOL_VERSION);
            self.respond_json(&wire::hello_ack(id, version), counters);
            if version == binary::PROTOCOL_VERSION {
                // The rest of `in_buf` (frames an optimistic client
                // pipelined behind its offer) now parses as binary.
                self.codec = Codec::Binary;
                self.scan_from = 0;
            }
            return;
        }
        let response = match wire::WireRequest::decode(frame) {
            Ok(request) => {
                counters.add(&counters.frames_decoded, 1);
                wire::dispatch(service, request.id, request.body)
            }
            Err(e) => wire::WireResponse::error(e.id, e.error),
        };
        counters.count_report_ack(&response);
        self.respond_json(&response, counters);
    }

    /// The peer will send nothing more: answer any frame cut short by
    /// the close (parity with the threaded server), then close after
    /// the flush.
    fn finish_eof<S: QueryService + ?Sized>(
        &mut self,
        service: &S,
        counters: &TransportCounters,
    ) -> Result<(), ()> {
        match self.codec {
            Codec::Json => {
                if !self.in_buf.is_empty() {
                    // A final frame missing only its newline is
                    // answered before closing. (An upgrade on the
                    // final frame is moot — the peer already closed.)
                    let line = std::mem::take(&mut self.in_buf);
                    self.scan_from = 0;
                    self.handle_json_frame(&line, service, counters);
                }
            }
            Codec::Binary => {
                if !self.in_buf.is_empty() {
                    // Complete frames were consumed before EOF was
                    // processed, so whatever remains is truncated.
                    let response = if self.in_buf.len() < binary::HEADER_BYTES {
                        wire::WireResponse::error(
                            0,
                            wire::WireError::new(
                                wire::ErrorCode::MalformedRequest,
                                "connection closed mid-header",
                            ),
                        )
                    } else {
                        let header_bytes: &[u8; binary::HEADER_BYTES] = self.in_buf
                            [..binary::HEADER_BYTES]
                            .try_into()
                            .expect("length checked");
                        match binary::decode_header(header_bytes) {
                            Ok(header) => wire::WireResponse::error(
                                header.id,
                                wire::WireError::new(
                                    wire::ErrorCode::MalformedRequest,
                                    "connection closed mid-payload",
                                ),
                            ),
                            Err(e) => wire::WireResponse::error(0, e),
                        }
                    };
                    self.in_buf.clear();
                    self.respond_binary(&response, counters);
                }
            }
        }
        self.closing = true;
        Ok(())
    }

    // --- response queueing -------------------------------------------

    fn take_buffer(&mut self) -> Vec<u8> {
        self.spare.pop().unwrap_or_default()
    }

    fn respond_json(&mut self, response: &wire::WireResponse, counters: &TransportCounters) {
        let mut frame = self.take_buffer();
        frame.extend_from_slice(response.encode().as_bytes());
        frame.push(b'\n');
        self.enqueue(frame, counters);
    }

    fn respond_binary(&mut self, response: &wire::WireResponse, counters: &TransportCounters) {
        let mut frame = self.take_buffer();
        if binary::encode_response(response, &mut frame).is_err() {
            // The response itself exceeds the frame cap: answerable
            // but not shippable, which is the server's problem.
            let oversized = wire::WireResponse::error(
                response.id,
                wire::WireError::new(
                    wire::ErrorCode::Internal,
                    "response exceeds the frame byte cap; split the batch",
                ),
            );
            binary::encode_response(&oversized, &mut frame)
                .expect("error frames are far below the frame cap");
        }
        self.enqueue(frame, counters);
    }

    /// Queues one encoded response (counted before any byte moves, so
    /// totals are visible by the time a client reads the response) and
    /// applies the high-water pause.
    fn enqueue(&mut self, frame: Vec<u8>, counters: &TransportCounters) {
        counters.add(&counters.responses, 1);
        self.out_bytes += frame.len();
        self.out.push_back(frame);
        if self.out_bytes >= HIGH_WATER && !self.paused && !self.closing {
            self.paused = true;
            counters.add(&counters.read_stalls, 1);
        }
    }

    /// Queues a typed rejection and flags the connection to close once
    /// the queue flushes.
    fn reject_and_close(&mut self, response: wire::WireResponse, counters: &TransportCounters) {
        match self.codec {
            Codec::Json => self.respond_json(&response, counters),
            Codec::Binary => self.respond_binary(&response, counters),
        }
        self.closing = true;
        // Closing overrides backpressure: drain and go.
        self.paused = false;
    }
}
