//! Derive macros for the vendored `serde` stub.
//!
//! `syn` and `quote` are unavailable offline, so the item is parsed
//! directly from the `proc_macro` token stream. Supported input shapes —
//! exactly what this workspace defines:
//!
//! * structs with named fields, with per-field `#[serde(skip)]`,
//!   `#[serde(default)]` and `#[serde(alias = "…")]` (deserialization
//!   accepts the alias names in addition to the field name, matching
//!   upstream serde);
//! * tuple structs;
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching upstream serde's JSON encoding).
//!
//! Generics are not supported; the macro panics with a clear message if
//! it meets a shape it cannot handle, which turns into a compile error
//! at the derive site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed `#[derive]` input.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: fields in declaration order.
    Struct(Vec<Field>),
    /// Tuple struct with the given arity.
    TupleStruct(usize),
    /// Enum.
    Enum(Vec<Variant>),
}

/// One named struct field with its parsed `#[serde(...)]` attributes.
struct Field {
    name: String,
    attrs: FieldAttrs,
}

/// Field-level serde attributes this stub understands.
#[derive(Default)]
struct FieldAttrs {
    /// `#[serde(skip)]`: never serialised, `Default::default()` on
    /// deserialisation.
    skip: bool,
    /// `#[serde(default)]`: missing key deserialises to
    /// `Default::default()` instead of erroring.
    default: bool,
    /// `#[serde(alias = "…")]` names accepted on deserialisation in
    /// addition to the field name.
    aliases: Vec<String>,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses the contents of a `serde(...)` attribute group into `attrs`.
/// Understood entries: `skip`, `default`, `alias = "name"`; anything
/// else panics (a compile error at the derive site) rather than being
/// silently dropped.
fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut FieldAttrs) {
    let mut trees = group.stream().into_iter();
    match trees.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // not a serde attribute (e.g. #[doc])
    }
    let Some(TokenTree::Group(inner)) = trees.next() else {
        return;
    };
    let tokens: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut pos = 0;
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                attrs.skip = true;
                pos += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "default" => {
                attrs.default = true;
                pos += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "alias" => {
                match (tokens.get(pos + 1), tokens.get(pos + 2)) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let raw = lit.to_string();
                        let name = raw.trim_matches('"').to_string();
                        assert!(
                            raw.starts_with('"') && raw.ends_with('"') && !name.is_empty(),
                            "#[serde(alias = ...)] expects a non-empty string literal, got {raw}"
                        );
                        attrs.aliases.push(name);
                        pos += 3;
                    }
                    other => panic!("#[serde(alias = \"...\")] malformed near {other:?}"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => pos += 1,
            other => panic!("unsupported serde attribute entry: {other}"),
        }
    }
}

/// Consumes leading `#[...]` attributes, collecting any serde field
/// attributes.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1;
                match &tokens[*pos] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                        parse_serde_attr(g, &mut attrs);
                        *pos += 1;
                    }
                    other => panic!("expected [...] after #, got {other}"),
                }
            }
            _ => break,
        }
    }
    attrs
}

/// Consumes a `pub` / `pub(...)` visibility prefix if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Consumes tokens up to (and including) the next comma at angle-bracket
/// depth zero. Groups count as single trees, so only `<`/`>` puncts need
/// depth tracking.
fn skip_to_top_level_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts top-level comma-separated items in a token stream (tuple
/// fields), ignoring a trailing comma.
fn count_top_level_items(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_to_top_level_comma(&tokens, &mut pos);
        count += 1;
    }
    count
}

/// Parses the `{ ... }` body of a named-field struct (or struct
/// variant) into [`Field`]s.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, got {other}"),
        }
        skip_to_top_level_comma(&tokens, &mut pos);
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic type `{name}`");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::TupleStruct(0),
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other} {name}`"),
    };
    Input { name, kind }
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name in `{enum_name}`, got {other}"),
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(
                    parse_named_fields(g.stream())
                        .into_iter()
                        .map(|f| {
                            assert!(
                                !f.attrs.skip && !f.attrs.default && f.attrs.aliases.is_empty(),
                                "serde field attributes unsupported on enum variant fields"
                            );
                            f.name
                        })
                        .collect(),
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_top_level_items(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip a possible `= discriminant` and the trailing comma.
        skip_to_top_level_comma(&tokens, &mut pos);
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation (built as strings, parsed back into a TokenStream)
// ---------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = String::from(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let name = &f.name;
                s.push_str(&format!(
                    "__obj.push((::std::string::String::from(\"{name}\"), \
                     ::serde::Serialize::serialize_value(&self.{name})));\n"
                ));
            }
            s.push_str("::serde::Value::Obj(__obj)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
                        };
                        s.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Obj(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from(
                            "{ let mut __vobj: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__vobj.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::serialize_value({f})));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Obj(__vobj) }");
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {inner})]),\n"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_obj().ok_or_else(|| ::serde::Error::msg(\
                 format!(\"{name}: expected object, got {{}}\", __v.kind())))?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                let fname = &f.name;
                if f.attrs.skip {
                    s.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
                } else if f.attrs.default || !f.attrs.aliases.is_empty() {
                    let names: Vec<String> = std::iter::once(fname.clone())
                        .chain(f.attrs.aliases.iter().cloned())
                        .map(|n| format!("\"{n}\""))
                        .collect();
                    let helper = if f.attrs.default {
                        "field_aliased_or_default"
                    } else {
                        "field_aliased"
                    };
                    s.push_str(&format!(
                        "{fname}: ::serde::{helper}(__obj, &[{}], \"{name}\")?,\n",
                        names.join(", ")
                    ));
                } else {
                    s.push_str(&format!(
                        "{fname}: ::serde::field(__obj, \"{fname}\", \"{name}\")?,\n"
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Kind::TupleStruct(0) => format!("::core::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let __arr = __v.as_arr().ok_or_else(|| ::serde::Error::msg(\
                 format!(\"{name}: expected array, got {{}}\", __v.kind())))?;\n\
                 if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::Error::msg(format!(\"{name}: expected {n} elements, got {{}}\", \
                 __arr.len()))); }}\n\
                 ::core::result::Result::Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::deserialize_value(&__arr[{i}])?,\n"
                ));
            }
            s.push_str("))");
            s
        }
        Kind::Enum(variants) => {
            // Unit variants arrive as strings; data variants as
            // single-key objects (externally tagged).
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vn}\" => {{ let __arr = __inner.as_arr().ok_or_else(|| \
                             ::serde::Error::msg(\"{name}::{vn}: expected array\"))?;\n\
                             if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::Error::msg(\"{name}::{vn}: wrong arity\")); }}\n\
                             ::core::result::Result::Ok({name}::{vn}(\n"
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "::serde::Deserialize::deserialize_value(&__arr[{i}])?,\n"
                            ));
                        }
                        arm.push_str(")) },\n");
                        data_arms.push_str(&arm);
                    }
                    Shape::Named(fields) => {
                        let mut arm = format!(
                            "\"{vn}\" => {{ let __vobj = __inner.as_obj().ok_or_else(|| \
                             ::serde::Error::msg(\"{name}::{vn}: expected object\"))?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{f}: ::serde::field(__vobj, \"{f}\", \"{name}::{vn}\")?,\n"
                            ));
                        }
                        arm.push_str("}) },\n");
                        data_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::msg(\
                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Obj(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __inner) = (&__o[0].0, &__o[0].1);\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::msg(\
                 format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::core::result::Result::Err(::serde::Error::msg(\
                 format!(\"{name}: expected string or single-key object, got {{}}\", \
                 __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
