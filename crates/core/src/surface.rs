//! The compiled query surface: serving-speed answers from any synopsis.
//!
//! Every [`Synopsis`] can export its leaf cells; this module compiles
//! that method-agnostic cell list into a [`CompiledSurface`] — the
//! single structure all serving-side features (releases, caching,
//! sharding, batch endpoints) are built against. Compilation picks the
//! cheapest faithful index automatically:
//!
//! * cells forming a rectilinear lattice (UG, hierarchy and wavelet
//!   leaves, most AG outputs) become a dense grid + summed-area table,
//!   answering in O(log cells) — two binary searches plus O(1) prefix
//!   sums;
//! * irregular partitions (KD trees, adversarial releases) fall back to
//!   a sorted row-band / interval index with per-band prefix sums.
//!
//! Either way the answers equal the naive linear scan
//! `Σ vᵢ · cellᵢ.overlap_fraction(q)` up to floating-point roundoff, so
//! compiling is pure post-processing: no privacy accounting is
//! involved.
//!
//! Batched answering ([`CompiledSurface::answer_all`]) chunks the query
//! slice across `std::thread::scope` threads through the shared
//! [`dpgrid_geo::answer_all_batched`] driver, mirroring the evaluation
//! runner's method-level parallelism.

use std::sync::atomic::{AtomicU64, Ordering};

use dpgrid_geo::cell_index::CellIndex;
use dpgrid_geo::{answer_all_batched, Domain, Rect};

use crate::Synopsis;

/// Process-wide count of [`CompiledSurface::compile`] runs.
static COMPILE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Number of surface compilations this process has performed, ever.
///
/// Compilation is the expensive once-per-release step the serving
/// layer is built to amortise, so this counter is the ground truth for
/// "no code path recompiles an already-compiled surface" regression
/// tests and for serving-side diagnostics. The single relaxed atomic
/// increment per compilation is noise next to the O(cells·log cells)
/// build it counts.
pub fn compile_count() -> u64 {
    COMPILE_COUNT.load(Ordering::Relaxed)
}

/// Which index a [`CompiledSurface`] compiled to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfaceKind {
    /// Dense lattice + summed-area table (`cols × rows`).
    Lattice {
        /// Lattice columns.
        cols: usize,
        /// Lattice rows.
        rows: usize,
    },
    /// Sorted row-band index with the given band count.
    Bands {
        /// Number of distinct y-extent bands.
        bands: usize,
    },
}

/// A query-optimised compilation of a synopsis's leaf cells.
///
/// Building is O(cells·log cells); afterwards [`CompiledSurface::answer`]
/// costs O(log cells) regardless of the producing method, making a
/// published release exactly as fast to query as the native in-memory
/// synopsis types.
#[derive(Debug, Clone)]
pub struct CompiledSurface {
    domain: Domain,
    index: CellIndex,
    cell_count: usize,
    total: f64,
    /// Whether every cell lies inside the domain. Only then does a
    /// domain-spanning query equal `total` (cells poking outside — legal
    /// for a raw `compile` call — contribute partially under clipping).
    cells_inside_domain: bool,
}

impl CompiledSurface {
    /// Compiles a cell list over `domain`. Infallible: degenerate cells
    /// are ignored and an empty list answers `0` everywhere.
    pub fn compile(domain: Domain, cells: &[(Rect, f64)]) -> Self {
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        let index = CellIndex::build(cells);
        let cells_inside_domain = cells
            .iter()
            .all(|(rect, _)| rect.is_empty() || domain.rect().contains_rect(rect));
        CompiledSurface {
            domain,
            total: index.total(),
            cell_count: cells.len(),
            index,
            cells_inside_domain,
        }
    }

    /// Compiles any synopsis's exported cells.
    pub fn from_synopsis(synopsis: &impl Synopsis) -> Self {
        CompiledSurface::compile(*synopsis.domain(), &synopsis.cells())
    }

    /// The domain the surface covers.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of leaf cells compiled in.
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Which index the compilation chose.
    pub fn kind(&self) -> SurfaceKind {
        match &self.index {
            CellIndex::Lattice(l) => {
                let (cols, rows) = l.shape();
                SurfaceKind::Lattice { cols, rows }
            }
            CellIndex::Bands(b) => SurfaceKind::Bands {
                bands: b.band_count(),
            },
        }
    }

    /// Sum of all cell values (the total-count estimate), O(1).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Estimated resident size of the compiled surface in bytes (the
    /// struct plus the owned index arrays).
    ///
    /// This is the serving layer's accounting currency: a
    /// memory-budgeted catalog bounds the *sum of resident surface
    /// bytes* rather than a surface count, because surfaces vary by
    /// orders of magnitude (a 16×16 uniform grid vs a 10⁶-cell
    /// adaptive release). The figure is an estimate of owned memory —
    /// allocator slack and `Arc` headers are not modelled — but it is
    /// exact for the dominant index arrays.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<CellIndex>() + self.index.memory_bytes()
    }

    /// Estimated count inside `query` in O(log cells).
    ///
    /// Queries are clipped to the domain; a miss answers `0`, matching
    /// [`Synopsis::answer`] semantics.
    pub fn answer(&self, query: &Rect) -> f64 {
        let Some(q) = self.domain.clip(query) else {
            return 0.0;
        };
        // Domain-spanning queries (common in dashboards and the paper's
        // q6 class) reduce to the precomputed total: O(1) even on the
        // band path, where such a query would stab every band. Only
        // valid when no cell pokes outside the domain, since clipping
        // would truncate such a cell's contribution.
        if self.cells_inside_domain && q == *self.domain.rect() {
            return self.total;
        }
        self.index.answer(&q)
    }

    /// Answers a batch of queries, chunked across scoped threads when
    /// the batch is large enough to amortise the spawns (the shared
    /// [`dpgrid_geo::answer_all_batched`] driver).
    pub fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        answer_all_batched(queries, |q| self.answer(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveGrid, AgConfig, UgConfig, UniformGrid};
    use dpgrid_geo::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn dataset(seed: u64) -> dpgrid_geo::GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
        generators::uniform(domain, 2_000, &mut rng(seed))
    }

    fn linear_scan(cells: &[(Rect, f64)], q: &Rect) -> f64 {
        cells.iter().map(|(r, v)| v * r.overlap_fraction(q)).sum()
    }

    #[test]
    fn ug_compiles_to_lattice_and_matches_scan() {
        let ds = dataset(1);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 16), &mut rng(2)).unwrap();
        let surface = CompiledSurface::from_synopsis(&ug);
        assert!(matches!(
            surface.kind(),
            SurfaceKind::Lattice { cols: 16, rows: 16 }
        ));
        let cells = ug.cells();
        for q in [
            Rect::new(0.0, 0.0, 8.0, 8.0).unwrap(),
            Rect::new(1.3, 2.7, 5.9, 6.1).unwrap(),
            Rect::new(3.99, 0.0, 4.01, 8.0).unwrap(),
            Rect::new(9.0, 9.0, 10.0, 10.0).unwrap(),
        ] {
            let expect = linear_scan(&cells, &q);
            assert!(
                (surface.answer(&q) - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn ag_compiles_and_matches_scan() {
        let ds = dataset(3);
        let ag =
            AdaptiveGrid::build(&ds, &AgConfig::guideline(0.5).with_m1(6), &mut rng(4)).unwrap();
        let surface = CompiledSurface::from_synopsis(&ag);
        let cells = ag.cells();
        assert_eq!(surface.cell_count(), cells.len());
        let q = Rect::new(0.7, 0.7, 6.2, 4.9).unwrap();
        let expect = linear_scan(&cells, &q);
        assert!((surface.answer(&q) - expect).abs() <= 1e-9 * (1.0 + expect.abs()));
        assert!((surface.total() - cells.iter().map(|(_, v)| v).sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn answer_all_matches_sequential() {
        let ds = dataset(5);
        let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 32), &mut rng(6)).unwrap();
        let surface = CompiledSurface::from_synopsis(&ug);
        // Enough queries to trigger the threaded path.
        let mut rng = rng(7);
        let queries: Vec<Rect> = (0..2_000)
            .map(|_| {
                use rand::Rng;
                let x = rng.random_range(0.0..7.0);
                let y = rng.random_range(0.0..7.0);
                Rect::new(x, y, x + 1.0, y + 1.0).unwrap()
            })
            .collect();
        let batched = surface.answer_all(&queries);
        let sequential: Vec<f64> = queries.iter().map(|q| surface.answer(q)).collect();
        assert_eq!(batched, sequential);
        // Force the scoped-thread fan-out regardless of how many CPUs
        // this machine reports (answer_all only engages it when
        // available_parallelism allows).
        use dpgrid_geo::answer_all_with_workers;
        let threaded = answer_all_with_workers(&queries, |q| surface.answer(q), 4);
        assert_eq!(threaded, sequential);
        // Chunk boundaries: worker counts that do not divide the batch.
        let threaded = answer_all_with_workers(&queries[..1001], |q| surface.answer(q), 3);
        assert_eq!(threaded, sequential[..1001]);
    }

    #[test]
    fn cells_outside_domain_keep_scan_semantics() {
        // `compile` accepts cells poking outside the domain (only
        // `Release::from_parts` validates containment). A spanning
        // query must then match the clipped linear scan, not the raw
        // cell total.
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let cells = vec![(Rect::new(0.0, 0.0, 2.0, 1.0).unwrap(), 10.0)];
        let surface = CompiledSurface::compile(domain, &cells);
        let spanning = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        let expect = linear_scan(&cells, &spanning);
        assert!((expect - 5.0).abs() < 1e-12);
        assert!((surface.answer(&spanning) - expect).abs() < 1e-12);
        // Fully-contained cells still take the O(1) total shortcut.
        let inside = vec![(Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 10.0)];
        let surface = CompiledSurface::compile(domain, &inside);
        assert_eq!(surface.answer(&spanning), 10.0);
    }

    #[test]
    fn memory_bytes_scales_with_index_size() {
        let ds = dataset(9);
        let small = CompiledSurface::from_synopsis(
            &UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(10)).unwrap(),
        );
        let large = CompiledSurface::from_synopsis(
            &UniformGrid::build(&ds, &UgConfig::fixed(1.0, 64), &mut rng(10)).unwrap(),
        );
        assert!(small.memory_bytes() > std::mem::size_of::<CompiledSurface>());
        // 64× the cells must cost strictly more resident bytes; the
        // lattice path is dominated by its (m+1)² prefix sums.
        assert!(large.memory_bytes() > 8 * small.memory_bytes());
    }

    #[test]
    fn empty_surface_answers_zero() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let surface = CompiledSurface::compile(domain, &[]);
        assert_eq!(surface.answer(&Rect::new(0.0, 0.0, 1.0, 1.0).unwrap()), 0.0);
        assert_eq!(surface.total(), 0.0);
        assert_eq!(surface.cell_count(), 0);
    }
}
