//! Error type for the core synopsis crate.
//!
//! Since the `Build` trait moved into the substrate, the workspace
//! shares one construction error — [`dpgrid_geo::DpError`] — and this
//! module keeps the crate's historical `CoreError` name alive as a
//! re-export. Variant names (`InvalidConfig`, `Geo`, `Mech`) and
//! `From` conversions are unchanged, so existing matches and `?` uses
//! keep compiling.

/// The unified construction error under its historical core name.
pub use dpgrid_geo::DpError as CoreError;
