//! Haar wavelet transforms in the average/difference form used by
//! Privelet (Xiao, Wang, Gehrke — TKDE 2011).
//!
//! The 1-D forward transform of a length-`n = 2^k` vector produces:
//!
//! * position 0 — the **base coefficient**: the overall average;
//! * positions `[n/2^j, n/2^(j-1))` for `j = 1..k` — **detail
//!   coefficients** of subtree size `2^j`: `(avg(left half) − avg(right
//!   half)) / 2` of the corresponding dyadic block.
//!
//! Changing one input entry by 1 changes the base coefficient by `1/n`
//! and one detail coefficient per level by `1/s` (`s` = its subtree
//! size). Privelet therefore assigns each coefficient the **weight**
//! `W = s` (and `W = n` for the base): the weighted L1 change of the
//! whole transform — the *generalized sensitivity* — is `1 + log₂ n`,
//! and coefficient `i` receives noise `Lap(ρ / (ε · W_i))`.
//!
//! The 2-D **standard decomposition** transforms every row, then every
//! column; weights multiply and the generalized sensitivity becomes
//! `(1 + log₂ n_x) · (1 + log₂ n_y)`.

use crate::{BaselineError, Result};

/// Returns `true` when `n` is a power of two (and non-zero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// Next power of two ≥ `n` (with `next_pow2(0) == 1`).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place 1-D forward Haar transform (average/difference form).
///
/// `data.len()` must be a power of two.
pub fn forward_1d(data: &mut [f64]) -> Result<()> {
    let n = data.len();
    if !is_power_of_two(n) {
        return Err(BaselineError::InvalidConfig(format!(
            "haar transform needs power-of-two length, got {n}"
        )));
    }
    let mut len = n;
    let mut buf = vec![0.0f64; n];
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = data[2 * i];
            let b = data[2 * i + 1];
            buf[i] = (a + b) / 2.0; // block average
            buf[half + i] = (a - b) / 2.0; // detail coefficient
        }
        data[..len].copy_from_slice(&buf[..len]);
        len = half;
    }
    Ok(())
}

/// In-place 1-D inverse Haar transform; exact inverse of [`forward_1d`].
pub fn inverse_1d(data: &mut [f64]) -> Result<()> {
    let n = data.len();
    if !is_power_of_two(n) {
        return Err(BaselineError::InvalidConfig(format!(
            "haar transform needs power-of-two length, got {n}"
        )));
    }
    let mut len = 2;
    let mut buf = vec![0.0f64; n];
    while len <= n {
        let half = len / 2;
        for i in 0..half {
            let avg = data[i];
            let diff = data[half + i];
            buf[2 * i] = avg + diff;
            buf[2 * i + 1] = avg - diff;
        }
        data[..len].copy_from_slice(&buf[..len]);
        len *= 2;
    }
    Ok(())
}

/// Privelet weight of 1-D coefficient position `i` in a length-`n`
/// transform: `n` for the base coefficient, the subtree size for detail
/// coefficients.
pub fn weight_1d(i: usize, n: usize) -> f64 {
    debug_assert!(is_power_of_two(n) && i < n);
    if i == 0 {
        return n as f64;
    }
    // Detail positions [n/2^j, n/2^(j-1)) carry subtree size 2^j; i.e.
    // position i in [half, 2·half) was produced when `half = n / 2^j`,
    // so the subtree size is n / half_floor(i) where half_floor is the
    // largest power of two ≤ i.
    let half = prev_pow2(i);
    (n / half) as f64
}

fn prev_pow2(i: usize) -> usize {
    debug_assert!(i >= 1);
    1usize << (usize::BITS - 1 - i.leading_zeros())
}

/// Generalized sensitivity of the 1-D Privelet transform: `1 + log₂ n`.
pub fn generalized_sensitivity_1d(n: usize) -> f64 {
    debug_assert!(is_power_of_two(n));
    1.0 + (n as f64).log2()
}

/// In-place 2-D forward standard decomposition over a row-major
/// `cols × rows` matrix: transform every row, then every column.
pub fn forward_2d(data: &mut [f64], cols: usize, rows: usize) -> Result<()> {
    check_dims(data, cols, rows)?;
    for r in 0..rows {
        forward_1d(&mut data[r * cols..(r + 1) * cols])?;
    }
    let mut col_buf = vec![0.0f64; rows];
    for c in 0..cols {
        for r in 0..rows {
            col_buf[r] = data[r * cols + c];
        }
        forward_1d(&mut col_buf)?;
        for r in 0..rows {
            data[r * cols + c] = col_buf[r];
        }
    }
    Ok(())
}

/// In-place 2-D inverse standard decomposition (columns first, then
/// rows — the exact inverse of [`forward_2d`]).
pub fn inverse_2d(data: &mut [f64], cols: usize, rows: usize) -> Result<()> {
    check_dims(data, cols, rows)?;
    let mut col_buf = vec![0.0f64; rows];
    for c in 0..cols {
        for r in 0..rows {
            col_buf[r] = data[r * cols + c];
        }
        inverse_1d(&mut col_buf)?;
        for r in 0..rows {
            data[r * cols + c] = col_buf[r];
        }
    }
    for r in 0..rows {
        inverse_1d(&mut data[r * cols..(r + 1) * cols])?;
    }
    Ok(())
}

/// Privelet weight of the 2-D coefficient at `(col, row)`:
/// `weight_1d(col, cols) · weight_1d(row, rows)`.
pub fn weight_2d(col: usize, row: usize, cols: usize, rows: usize) -> f64 {
    weight_1d(col, cols) * weight_1d(row, rows)
}

/// Generalized sensitivity of the 2-D standard decomposition:
/// `(1 + log₂ cols) · (1 + log₂ rows)`.
pub fn generalized_sensitivity_2d(cols: usize, rows: usize) -> f64 {
    generalized_sensitivity_1d(cols) * generalized_sensitivity_1d(rows)
}

fn check_dims(data: &[f64], cols: usize, rows: usize) -> Result<()> {
    if !is_power_of_two(cols) || !is_power_of_two(rows) {
        return Err(BaselineError::InvalidConfig(format!(
            "2-D haar needs power-of-two dims, got {cols}x{rows}"
        )));
    }
    if data.len() != cols * rows {
        return Err(BaselineError::InvalidConfig(format!(
            "matrix length {} != {cols}x{rows}",
            data.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        let mut v = vec![1.0, 2.0, 3.0];
        assert!(forward_1d(&mut v).is_err());
        assert!(inverse_1d(&mut v).is_err());
        let mut m = vec![0.0; 6];
        assert!(forward_2d(&mut m, 3, 2).is_err());
        let mut short = vec![0.0; 7];
        assert!(forward_2d(&mut short, 4, 2).is_err());
    }

    #[test]
    fn forward_known_values() {
        // [1, 3, 5, 7]: overall avg 4; top diff (2-6)/2 = -2;
        // pair diffs (1-3)/2 = -1, (5-7)/2 = -1.
        let mut v = vec![1.0, 3.0, 5.0, 7.0];
        forward_1d(&mut v).unwrap();
        assert_eq!(v, vec![4.0, -2.0, -1.0, -1.0]);
    }

    #[test]
    fn roundtrip_1d() {
        let orig: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 3.0).collect();
        let mut v = orig.clone();
        forward_1d(&mut v).unwrap();
        inverse_1d(&mut v).unwrap();
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn roundtrip_2d() {
        let (cols, rows) = (16, 8);
        let orig: Vec<f64> = (0..cols * rows).map(|i| ((i * 13) % 7) as f64).collect();
        let mut m = orig.clone();
        forward_2d(&mut m, cols, rows).unwrap();
        inverse_2d(&mut m, cols, rows).unwrap();
        for (a, b) in m.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn weights_1d_layout() {
        let n = 8;
        // Position 0: base, weight 8. Position 1: top detail (subtree 8).
        // Positions 2-3: subtree 4. Positions 4-7: subtree 2.
        let expect = [8.0, 8.0, 4.0, 4.0, 2.0, 2.0, 2.0, 2.0];
        for (i, &w) in expect.iter().enumerate() {
            assert_eq!(weight_1d(i, n), w, "position {i}");
        }
    }

    #[test]
    fn generalized_sensitivity_is_weighted_l1_change() {
        // Adding 1 to any single entry changes the weighted L1 norm of
        // the transform by exactly 1 + log2(n).
        let n = 32;
        for pos in [0usize, 5, 17, 31] {
            let mut base = vec![0.0f64; n];
            forward_1d(&mut base).unwrap();
            let mut bumped = vec![0.0f64; n];
            bumped[pos] = 1.0;
            forward_1d(&mut bumped).unwrap();
            let weighted: f64 = (0..n)
                .map(|i| (bumped[i] - base[i]).abs() * weight_1d(i, n))
                .sum();
            assert!(
                (weighted - generalized_sensitivity_1d(n)).abs() < 1e-9,
                "pos {pos}: {weighted}"
            );
        }
    }

    #[test]
    fn generalized_sensitivity_2d_is_weighted_l1_change() {
        let (cols, rows) = (8, 4);
        for (pc, pr) in [(0usize, 0usize), (3, 1), (7, 3), (5, 2)] {
            let mut bumped = vec![0.0f64; cols * rows];
            bumped[pr * cols + pc] = 1.0;
            forward_2d(&mut bumped, cols, rows).unwrap();
            let weighted: f64 = (0..rows)
                .flat_map(|r| (0..cols).map(move |c| (c, r)))
                .map(|(c, r)| bumped[r * cols + c].abs() * weight_2d(c, r, cols, rows))
                .sum();
            let expect = generalized_sensitivity_2d(cols, rows);
            assert!(
                (weighted - expect).abs() < 1e-9,
                "bump ({pc},{pr}): {weighted} vs {expect}"
            );
        }
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(360), 512);
        assert_eq!(next_pow2(512), 512);
    }

    #[test]
    fn constant_vector_has_zero_details() {
        let mut v = vec![5.0; 16];
        forward_1d(&mut v).unwrap();
        assert_eq!(v[0], 5.0);
        assert!(v[1..].iter().all(|&d| d.abs() < 1e-12));
    }
}
