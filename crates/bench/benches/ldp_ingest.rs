//! LDP report-ingestion throughput — the acceptance benchmark of the
//! write path.
//!
//! Binds a `TcpServer` over a `CollectingService` and measures
//! end-to-end reports/sec through real loopback sockets — batch
//! encode, TCP round trip, boundary validation, chunked accumulator
//! fold, ack decode — across the two axes that matter for an
//! ingestion front door:
//!
//! * **grid size**: 8×8, 16×16 and 32×32 cells — the domain the
//!   accumulator folds over and (for OUE) the per-report payload size;
//! * **codec × pipelining**: JSON v1 batches one round trip at a
//!   time, binary v2 one at a time, and binary v2 with all of a pass's
//!   batches written in one burst (`submit_reports`).
//!
//! GRR rows carry 4-byte reports and measure framing + fold overhead;
//! the `oue` rows ship `⌈cells/64⌉` packed words per report, so their
//! trajectory tracks payload bandwidth. Medians are recorded to
//! `BENCH_ldp_ingest.json` at the workspace root (same shape as the
//! other `BENCH_*.json` trajectory files).
//!
//! A second section measures the fold **in-process** — no socket in
//! the way — comparing the seed's naive folds (per-bit walk for OUE,
//! find-validate + scatter for GRR) against the `dpgrid-kernels`
//! scalar reference and the runtime-dispatched backend, at 64 / 256 /
//! 1024 / 4096 cells. These `micro_rows` isolate the kernel-layer
//! speedup the end-to-end rows ride on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

use dpgrid_bench::bench_rng;
use dpgrid_geo::Domain;
use dpgrid_ldp::{CollectingService, CollectorConfig, ReportCollector};
use dpgrid_mech::{oue_words, BudgetSchedule};
use dpgrid_net::{TcpClient, TcpServer};
use dpgrid_serve::{Catalog, QueryEngine, ReportBatch, ReportPayload};
use rand::Rng;

const EPS: f64 = 1.0;
/// Reports per wire batch.
const REPORTS_PER_BATCH: usize = 256;
/// Batches each pass submits (one epoch stays open throughout — the
/// accumulator is flat, so folded reports cost no memory).
const BATCHES_PER_PASS: usize = 16;
/// The measured grid ladder.
const GRIDS: [(usize, usize); 3] = [(8, 8), (16, 16), (32, 32)];

/// One measured configuration: oracle family, offered protocol, and
/// whether the pass's batches go out one round trip at a time or as
/// one pipelined burst.
#[derive(Clone, Copy)]
struct Variant {
    tag: &'static str,
    oracle: &'static str,
    max_protocol: u32,
    pipelined: bool,
}

const VARIANTS: [Variant; 4] = [
    Variant {
        tag: "grr_v1",
        oracle: "grr",
        max_protocol: 1,
        pipelined: false,
    },
    Variant {
        tag: "grr_v2",
        oracle: "grr",
        max_protocol: 2,
        pipelined: false,
    },
    Variant {
        tag: "grr_v2_pipe",
        oracle: "grr",
        max_protocol: 2,
        pipelined: true,
    },
    Variant {
        tag: "oue_v2_pipe",
        oracle: "oue",
        max_protocol: 2,
        pipelined: true,
    },
];

fn collecting(cols: usize, rows: usize) -> CollectingService<QueryEngine> {
    let domain = Domain::from_corners(0.0, 0.0, cols as f64, rows as f64).unwrap();
    // One epoch stays open for the whole measurement; every pass folds
    // into the same flat accumulator, so lift the report cap out of
    // the way.
    let config = CollectorConfig::new(
        "bench",
        domain,
        cols,
        rows,
        BudgetSchedule::uniform(EPS, 1).unwrap(),
    )
    .unwrap()
    .capacity(u64::MAX);
    CollectingService::new(
        QueryEngine::new(Catalog::new()),
        ReportCollector::new(config).unwrap(),
    )
}

/// Pre-builds one pass worth of well-formed batches. Report *values*
/// are random but statistically meaningless — this measures transport
/// and fold throughput, not estimator quality.
fn pass_batches(cells: u32, oracle: &str) -> Vec<ReportBatch> {
    let mut rng = bench_rng();
    let words = oue_words(cells as usize);
    let tail = cells as usize % 64;
    let tail_mask = if tail == 0 {
        u64::MAX
    } else {
        (1u64 << tail) - 1
    };
    (0..BATCHES_PER_PASS)
        .map(|_| {
            let payload = match oracle {
                "grr" => ReportPayload::Grr(
                    (0..REPORTS_PER_BATCH)
                        .map(|_| rng.random_range(0..cells))
                        .collect(),
                ),
                _ => {
                    let mut bits = Vec::with_capacity(REPORTS_PER_BATCH * words);
                    for _ in 0..REPORTS_PER_BATCH {
                        for w in 0..words {
                            let word: u64 = rng.random();
                            bits.push(if w + 1 == words {
                                word & tail_mask
                            } else {
                                word
                            });
                        }
                    }
                    ReportPayload::Oue {
                        count: REPORTS_PER_BATCH as u32,
                        bits,
                    }
                }
            };
            ReportBatch {
                keyspace: "bench".to_string(),
                epoch: 0,
                epsilon: EPS,
                cells,
                payload,
            }
        })
        .collect()
}

/// One pass: submit every batch and check its ack. Returns elapsed
/// nanoseconds.
fn pass_ns(client: &mut TcpClient, batches: &[ReportBatch], pipelined: bool) -> f64 {
    let t = Instant::now();
    if pipelined {
        for ack in client.submit_reports(batches).expect("pipelined submit") {
            assert_eq!(
                ack.expect("batch accepted").accepted,
                REPORTS_PER_BATCH as u64
            );
        }
    } else {
        for batch in batches {
            let ack = client.submit_report(batch).expect("submit");
            assert_eq!(ack.accepted, REPORTS_PER_BATCH as u64);
        }
    }
    t.elapsed().as_nanos() as f64
}

/// Median nanoseconds per pass within a small time budget.
fn measure_ns(client: &mut TcpClient, batches: &[ReportBatch], pipelined: bool) -> f64 {
    let mut samples = Vec::new();
    let budget = std::time::Duration::from_millis(800);
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 5 {
        samples.push(pass_ns(client, batches, pipelined));
        if samples.len() >= 40 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    label: String,
    cells: u32,
    oracle: &'static str,
    protocol: u32,
    pipelined: bool,
    elapsed_ms: f64,
    reports_per_sec: f64,
}

// --- in-process fold microbenchmarks ---------------------------------

/// The micro ladder: the bench grid sizes plus the 4096-cell shape
/// where the naive OUE walk was collapsing.
const MICRO_CELLS: [u32; 4] = [64, 256, 1024, 4096];
/// Reports per measured fold — one TCP pass worth.
const MICRO_REPORTS: usize = BATCHES_PER_PASS * REPORTS_PER_BATCH;

struct MicroRow {
    label: String,
    cells: u32,
    oracle: &'static str,
    backend: &'static str,
    elapsed_ms: f64,
    reports_per_sec: f64,
}

/// The seed's OUE fold this PR replaced: clear one set bit per
/// iteration, scatter an increment for each.
fn naive_fold_oue(acc: &mut [u64], words: usize, bits: &[u64]) {
    for report in bits.chunks_exact(words) {
        for (w, &word) in report.iter().enumerate() {
            let base = w * 64;
            let mut rest = word;
            while rest != 0 {
                let b = rest.trailing_zeros() as usize;
                acc[base + b] += 1;
                rest &= rest - 1;
            }
        }
    }
}

/// The seed's two-pass GRR path: a find-style validation sweep, then
/// the scatter.
fn naive_fold_grr(acc: &mut [u64], cells: u32, reports: &[u32]) {
    assert!(reports.iter().all(|&c| c < cells), "bench batch in-domain");
    for &cell in reports {
        acc[cell as usize] += 1;
    }
}

/// Median nanoseconds per fold within a small time budget.
fn measure_fold_ns(mut fold: impl FnMut()) -> f64 {
    fold(); // warmup
    let mut samples = Vec::new();
    let budget = std::time::Duration::from_millis(200);
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 9 {
        let t = Instant::now();
        fold();
        samples.push(t.elapsed().as_nanos() as f64);
        if samples.len() >= 400 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn micro_rows() -> Vec<MicroRow> {
    use dpgrid_kernels::{
        fold_grr_checked, fold_grr_checked_with, fold_oue, fold_oue_with, Backend,
    };

    let mut rng = bench_rng();
    let mut rows = Vec::new();
    let mut push = |cells: u32, oracle: &'static str, backend: &'static str, ns: f64| {
        rows.push(MicroRow {
            label: format!("fold_{oracle}_{cells}c_{backend}"),
            cells,
            oracle,
            backend,
            elapsed_ms: ns / 1e6,
            reports_per_sec: MICRO_REPORTS as f64 / (ns / 1e9),
        });
    };
    for cells in MICRO_CELLS {
        let words = oue_words(cells as usize);
        let grr: Vec<u32> = (0..MICRO_REPORTS)
            .map(|_| rng.random_range(0..cells))
            .collect();
        // Same dense random payloads as the wire rows above.
        let tail = cells as usize % 64;
        let tail_mask = if tail == 0 {
            u64::MAX
        } else {
            (1u64 << tail) - 1
        };
        let mut bits = Vec::with_capacity(MICRO_REPORTS * words);
        for _ in 0..MICRO_REPORTS {
            for w in 0..words {
                let word: u64 = rng.random();
                bits.push(if w + 1 == words {
                    word & tail_mask
                } else {
                    word
                });
            }
        }
        let mut acc = vec![0u64; cells as usize];

        let ns = measure_fold_ns(|| naive_fold_grr(&mut acc, cells, &grr));
        push(cells, "grr", "naive", ns);
        let ns = measure_fold_ns(|| {
            fold_grr_checked_with(Backend::Scalar, &mut acc, cells, &grr).unwrap()
        });
        push(cells, "grr", "scalar", ns);
        let ns = measure_fold_ns(|| fold_grr_checked(&mut acc, cells, &grr).unwrap());
        push(cells, "grr", "dispatch", ns);

        let ns = measure_fold_ns(|| naive_fold_oue(&mut acc, words, &bits));
        push(cells, "oue", "naive", ns);
        let ns = measure_fold_ns(|| fold_oue_with(Backend::Scalar, &mut acc, words, &bits));
        push(cells, "oue", "scalar", ns);
        let ns = measure_fold_ns(|| fold_oue(&mut acc, words, &bits));
        push(cells, "oue", "dispatch", ns);
    }
    rows
}

fn bench_ldp_ingest(c: &mut Criterion) {
    let mut rows: Vec<Row> = Vec::new();
    let mut group = c.benchmark_group("ldp_ingest");
    for (cols, grid_rows) in GRIDS {
        let cells = (cols * grid_rows) as u32;
        let service = Arc::new(collecting(cols, grid_rows));
        let server = TcpServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        for variant in VARIANTS {
            let batches = pass_batches(cells, variant.oracle);
            let mut client =
                TcpClient::connect_with_protocol(addr, variant.max_protocol).expect("connect");
            let protocol = client.protocol_version().unwrap_or(1);
            pass_ns(&mut client, &batches, variant.pipelined); // warmup
            let label = format!("{}x{}_{}", cols, grid_rows, variant.tag);
            let ns = measure_ns(&mut client, &batches, variant.pipelined);
            group.bench_function(&label, |b| {
                b.iter(|| pass_ns(&mut client, &batches, variant.pipelined));
            });
            let reports = (BATCHES_PER_PASS * REPORTS_PER_BATCH) as f64;
            rows.push(Row {
                label,
                cells,
                oracle: variant.oracle,
                protocol,
                pipelined: variant.pipelined,
                elapsed_ms: ns / 1e6,
                reports_per_sec: reports / (ns / 1e9),
            });
        }
        server.shutdown();
    }
    group.finish();

    let baseline = rows.first().map(|r| r.reports_per_sec).unwrap_or(f64::NAN);
    for r in &rows {
        println!(
            "ldp_ingest/{}: {} cells, proto v{}{}, {} batches x {} reports, \
             {:.2} ms/pass, {:.0} reports/s ({:.2}x vs 8x8_grr_v1)",
            r.label,
            r.cells,
            r.protocol,
            if r.pipelined { " pipelined" } else { "" },
            BATCHES_PER_PASS,
            REPORTS_PER_BATCH,
            r.elapsed_ms,
            r.reports_per_sec,
            r.reports_per_sec / baseline
        );
    }

    let micro = micro_rows();
    for m in &micro {
        // Speedup is against the same shape's naive fold.
        let naive = micro
            .iter()
            .find(|n| n.cells == m.cells && n.oracle == m.oracle && n.backend == "naive")
            .map(|n| n.reports_per_sec)
            .unwrap_or(f64::NAN);
        println!(
            "ldp_ingest/{}: {:.3} ms/fold, {:.0} reports/s ({:.2}x vs naive)",
            m.label,
            m.elapsed_ms,
            m.reports_per_sec,
            m.reports_per_sec / naive
        );
    }
    write_json(&rows, baseline, &micro);
}

/// Records the measurements to `BENCH_ldp_ingest.json` at the
/// workspace root (perf-trajectory files live in-repo).
fn write_json(rows: &[Row], baseline: f64, micro: &[MicroRow]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ldp_ingest.json");
    let mut out = format!(
        "{{\n  \"bench\": \"ldp_ingest\",\n  \"unit\": \"reports_per_sec\",\n  \
         \"transport\": \"tcp_loopback\",\n  \
         \"kernel_backend\": \"{}\",\n  \
         \"reports_per_batch\": {REPORTS_PER_BATCH},\n  \
         \"batches_per_pass\": {BATCHES_PER_PASS},\n  \"rows\": [\n",
        dpgrid_kernels::active_backend()
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"cells\": {}, \"oracle\": \"{}\", \"protocol\": {}, \
             \"pipelined\": {}, \"elapsed_ms\": {:.2}, \"reports_per_sec\": {:.0}, \
             \"speedup_vs_8x8_grr_v1\": {:.2}}}{}\n",
            r.label,
            r.cells,
            r.oracle,
            r.protocol,
            r.pipelined,
            r.elapsed_ms,
            r.reports_per_sec,
            r.reports_per_sec / baseline,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"micro_reports_per_fold\": ");
    out.push_str(&format!("{MICRO_REPORTS},\n  \"micro_rows\": [\n"));
    for (i, m) in micro.iter().enumerate() {
        let naive = micro
            .iter()
            .find(|n| n.cells == m.cells && n.oracle == m.oracle && n.backend == "naive")
            .map(|n| n.reports_per_sec)
            .unwrap_or(f64::NAN);
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"cells\": {}, \"oracle\": \"{}\", \"backend\": \"{}\", \
             \"elapsed_ms\": {:.3}, \"reports_per_sec\": {:.0}, \"speedup_vs_naive\": {:.2}}}{}\n",
            m.label,
            m.cells,
            m.oracle,
            m.backend,
            m.elapsed_ms,
            m.reports_per_sec,
            m.reports_per_sec / naive,
            if i + 1 < micro.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("ldp_ingest: could not write {path}: {e}");
    }
}

criterion_group!(benches, bench_ldp_ingest);
criterion_main!(benches);
