//! Geometry, dataset and histogram substrate for the `dpgrid` workspace.
//!
//! This crate provides everything the differentially private synopsis
//! methods consume that is *not* privacy related:
//!
//! * plane geometry: [`Point`], [`Rect`] and the validated [`Domain`];
//! * the point container [`GeoDataset`] with CSV import/export;
//! * the dense 2-D histogram [`DenseGrid`] together with a
//!   [`SummedAreaTable`] for O(1) aligned range sums;
//! * an exact range-count oracle [`PointIndex`] used to compute ground
//!   truth answers for the error metrics of the evaluation harness;
//! * compiled query indexes over arbitrary cell partitions
//!   ([`cell_index`]): a regular-lattice fast path and a sorted
//!   row-band / interval fallback, both answering uniformity-assumption
//!   range queries in O(log cells) instead of O(cells);
//! * deterministic synthetic [`generators`] reproducing the spatial
//!   character of the four datasets used in the paper (road, checkin,
//!   landmark, storage);
//! * the workspace-wide release-format traits [`Synopsis`] and
//!   [`Build`], plus the unified construction error [`DpError`] — they
//!   live here (the lowest crate that knows [`GeoDataset`] and
//!   [`Rect`]) so that every synopsis crate can implement them without
//!   depending on the others.
//!
//! # Geometry conventions
//!
//! All rectangles — grid cells, query ranges and domains alike — are
//! interpreted as **half-open** boxes `[x0, x1) × [y0, y1)`. This makes
//! every grid partition an exact partition: a point on an interior cell
//! boundary belongs to exactly one cell. The domain itself is treated as
//! closed on its upper edges (points exactly on the domain's maximum
//! coordinate belong to the last row/column of cells), which mirrors how
//! the paper buckets data points into an `m × m` grid.
//!
//! # Example
//!
//! ```
//! use dpgrid_geo::{Domain, GeoDataset, Point, Rect};
//!
//! let domain = Domain::new(Rect::new(0.0, 0.0, 10.0, 10.0).unwrap()).unwrap();
//! let dataset = GeoDataset::from_points(
//!     vec![Point::new(1.0, 1.0), Point::new(9.0, 9.0)],
//!     domain,
//! )
//! .unwrap();
//! assert_eq!(dataset.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell_index;
mod dataset;
mod domain;
mod error;
pub mod generators;
mod grid;
pub mod ndim;
mod point;
mod point_index;
mod rect;
mod sat;
mod synopsis;

pub use cell_index::{BandIndex, BandStabStats, CellIndex, LatticeIndex};
pub use dataset::GeoDataset;
pub use domain::Domain;
pub use error::{DpError, GeoError};
pub use grid::{DenseGrid, MAX_GRID_CELLS};
pub use point::Point;
pub use point_index::PointIndex;
pub use rect::Rect;
pub use sat::SummedAreaTable;
pub use synopsis::{
    answer_all_batched, answer_all_with_workers, Build, Synopsis, MIN_QUERIES_PER_THREAD,
};

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GeoError>;
