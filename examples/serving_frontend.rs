//! Serving frontend: publish several DP releases into a catalog and
//! answer batched query traffic across all of them through one
//! `QueryEngine`.
//!
//! ```sh
//! cargo run --release --example serving_frontend
//! ```
//!
//! Demonstrates the full serving stack: zero-copy publish into the
//! catalog (`Pipeline::publish_into`), the memory-budgeted LRU of
//! compiled surfaces (watch the cache states flip between cold and
//! warm), batched multi-release routing, and live re-versioning of a
//! key while the engine keeps serving.

use dpgrid::prelude::*;
use dpgrid::serve::CacheState;

fn main() {
    // 1. Publish one release per dataset. The catalog's resident
    //    compiled-surface bytes are bounded; the budget below is sized
    //    (via `CompiledSurface::memory_bytes` on a probe) to hold two
    //    of the three surfaces, so the LRU has to juggle them.
    let datasets = [
        ("storage", PaperDataset::Storage),
        ("landmark", PaperDataset::Landmark),
        ("checkin", PaperDataset::Checkin),
    ];
    let releases: Vec<_> = datasets
        .iter()
        .enumerate()
        .map(|(i, (key, dataset))| {
            let data = dataset
                .generate_n(100 + i as u64, 30_000)
                .expect("generate dataset");
            let release = Pipeline::new(&data)
                .epsilon(1.0)
                .method(Method::ag_suggested())
                .seed(7 + i as u64)
                .publish()
                .expect("publish release");
            println!(
                "published {key:>8}: {} cells under {} (eps = {})",
                release.cell_count(),
                release.method(),
                release.epsilon()
            );
            (*key, release)
        })
        .collect();

    // Size the budget off a throwaway probe compile (a clone compiles
    // its own surface; the original stays cold for the demo).
    let probe_bytes = releases[0].1.clone().shared_surface().memory_bytes();
    let budget = probe_bytes * 2 + probe_bytes / 2;
    println!("surface ~{probe_bytes} B each; catalog budget {budget} B (fits 2 of 3)");
    let mut catalog = Catalog::with_memory_budget(budget);
    for (key, release) in releases {
        catalog.insert(key, release);
    }

    // 2. Wrap the catalog in the thread-safe batched frontend.
    let engine = QueryEngine::new(catalog);

    // 3. A batch of requests across all releases. Every surface is
    //    leased under one catalog lock, compiled at most once, and the
    //    requests are answered outside the lock over scoped workers.
    let requests: Vec<QueryRequest> = datasets
        .iter()
        .map(|(key, dataset)| {
            let rect = dataset.domain().rect().grid_cell(4, 4, 1, 2);
            let wide = *dataset.domain().rect();
            QueryRequest::new(*key, vec![wide, rect])
        })
        .collect();
    // Round 1 compiles everything cold; round 2 runs in reverse order
    // so the two most-recently-used surfaces are served warm (querying
    // 3 keys round-robin through a 2-surface cache would thrash — the
    // classic LRU lesson, visible here in the cache column).
    for (round, batch) in [
        ("1", requests.clone()),
        ("2 (reversed)", requests.iter().rev().cloned().collect()),
    ] {
        println!("--- batch round {round} ---");
        for response in engine.answer_batch(&batch) {
            let response = response.expect("known key");
            println!(
                "{:>8} v{} [{}]: total ~ {:>9.1}, window ~ {:>8.1}",
                response.release_key,
                response.version,
                match response.cache {
                    CacheState::Warm => "warm",
                    CacheState::Cold => "cold",
                },
                response.answers[0],
                response.answers[1]
            );
        }
    }

    // 4. Re-version a key while the engine is live: the next answer
    //    sees version 2 and a cold (recompiled) surface.
    let data = PaperDataset::Storage
        .generate_n(999, 30_000)
        .expect("generate dataset");
    let version = engine.insert(
        "storage",
        Pipeline::new(&data)
            .epsilon(1.0)
            .method(Method::ug_suggested())
            .seed(99)
            .publish()
            .expect("publish replacement"),
    );
    let refreshed = engine
        .answer(&requests[0])
        .expect("storage is still served");
    println!(
        "re-versioned storage to v{version}; next answer: v{} [{}]",
        refreshed.version,
        match refreshed.cache {
            CacheState::Warm => "warm",
            CacheState::Cold => "cold",
        }
    );

    // 5. Engine counters: traffic, cache behaviour, residency.
    let stats = engine.stats();
    println!(
        "stats: {} requests, {} answers, {} compilations, {} warm hits, \
         {} evictions, {} surfaces / {} of {} budget bytes resident",
        stats.requests,
        stats.answers,
        stats.catalog.compilations,
        stats.catalog.warm_hits,
        stats.catalog.evictions,
        stats.catalog.warm,
        stats.catalog.resident_bytes,
        stats.catalog.budget_bytes
    );
    assert!(stats.catalog.resident_bytes <= stats.catalog.budget_bytes);
}
