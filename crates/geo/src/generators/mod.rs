//! Deterministic synthetic dataset generators.
//!
//! Two layers:
//!
//! * [`ClusterMixture`] / [`Component`] — a general weighted mixture of
//!   Gaussian clusters and uniform blocks, confined to a domain;
//! * [`PaperDataset`] — ready-made mixtures reproducing the spatial
//!   character of the paper's four evaluation datasets (see the module
//!   docs of the `paper` submodule for the substitution rationale).
//!
//! Both layers are pure functions of a `u64` seed.

mod mixture;
mod paper;

pub use mixture::{standard_normal_pair, ClusterMixture, Component};
pub use paper::PaperDataset;

use rand::Rng;

use crate::{Domain, GeoDataset, Point};

/// Generates `n` points uniformly distributed over `domain`.
///
/// The completely uniform dataset is the degenerate case of the paper's
/// error analysis (optimal grid size 1 × 1 as ε → arbitrary, i.e. a very
/// large `c`); it is used by tests and the guideline-validation benches.
pub fn uniform(domain: Domain, n: usize, rng: &mut impl Rng) -> GeoDataset {
    let r = domain.rect();
    let points = (0..n)
        .map(|_| {
            Point::new(
                rng.random_range(r.x0()..r.x1()),
                rng.random_range(r.y0()..r.y1()),
            )
        })
        .collect();
    GeoDataset::from_points(points, domain).expect("uniform sampling stayed in domain")
}

/// Generates `n` points from a single axis-aligned Gaussian centered in
/// the domain, with standard deviation `sigma_frac` of each extent.
/// A maximally *non*-uniform counterpart to [`uniform`].
pub fn central_gaussian(
    domain: Domain,
    n: usize,
    sigma_frac: f64,
    rng: &mut impl Rng,
) -> crate::Result<GeoDataset> {
    let c = domain.rect().center();
    let mix = ClusterMixture::new(
        domain,
        vec![(
            Component::Gaussian {
                center: c,
                sigma_x: (domain.width() * sigma_frac).max(f64::MIN_POSITIVE),
                sigma_y: (domain.height() * sigma_frac).max(f64::MIN_POSITIVE),
            },
            1.0,
        )],
    )?;
    Ok(mix.sample(n, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_domain() {
        let d = Domain::from_corners(2.0, 3.0, 6.0, 5.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ds = uniform(d, 4_000, &mut rng);
        assert_eq!(ds.len(), 4_000);
        // Each quadrant gets roughly a quarter of the points.
        let c = d.rect().center();
        let q1 = ds
            .points()
            .iter()
            .filter(|p| p.x < c.x && p.y < c.y)
            .count() as f64;
        assert!((q1 / 4_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn central_gaussian_concentrates() {
        let d = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ds = central_gaussian(d, 4_000, 0.05, &mut rng).unwrap();
        let near_center = ds
            .points()
            .iter()
            .filter(|p| (p.x - 5.0).abs() < 2.0 && (p.y - 5.0).abs() < 2.0)
            .count() as f64;
        assert!(near_center / 4_000.0 > 0.95);
    }
}
