//! Protocol v2: the length-prefixed binary frame codec.
//!
//! Carries exactly the frame types of the JSON codec — same
//! [`RequestBody`]/[`ResponseBody`] variants, same validation through
//! [`super::dispatch`], same stable [`ErrorCode`] table — but encodes
//! rectangles and answers as raw little-endian `f64` arrays instead of
//! text, so the hot serving path is bounded by memory copies, not
//! float formatting. A connection speaks it only after `Hello`
//! negotiation (see the [`super`] module docs); negotiation frames
//! themselves always travel as JSON v1.
//!
//! # Frame layout
//!
//! Every frame is a fixed [`HEADER_BYTES`]-byte header followed by
//! `payload_len` payload bytes. All integers and floats are
//! little-endian:
//!
//! | offset | size | field                                        |
//! |--------|------|----------------------------------------------|
//! | 0      | 2    | magic [`MAGIC`] = `D6 B2`                    |
//! | 2      | 1    | protocol version (= 2)                       |
//! | 3      | 1    | frame type (see below)                       |
//! | 4      | 8    | correlation id, `u64`                        |
//! | 12     | 4    | payload length in bytes, `u32`               |
//!
//! Both magic bytes are UTF-8 continuation bytes, so a binary frame
//! can never be mistaken for the start of a JSON line (and vice
//! versa). `payload_len` is capped at [`MAX_PAYLOAD_BYTES`] — the
//! protocol-wide [`MAX_FRAME_BYTES`] minus the header — and a header
//! declaring more is rejected before any payload is read.
//!
//! Frame types (request `0x0_`, response `0x8_`):
//!
//! | byte   | frame            | payload                            |
//! |--------|------------------|------------------------------------|
//! | `0x01` | Query            | query                              |
//! | `0x02` | Batch request    | `u32` n, n × query                 |
//! | `0x03` | Stats request    | empty                              |
//! | `0x04` | Keys request     | empty                              |
//! | `0x05` | Ping             | empty                              |
//! | `0x06` | Window           | window                             |
//! | `0x07` | Report           | report batch                       |
//! | `0x81` | Answers          | answers                            |
//! | `0x82` | Batch response   | `u32` n, n × outcome               |
//! | `0x83` | Stats response   | stats (15 × `u64` + optional tail) |
//! | `0x84` | Keys response    | `u32` n, n × string                |
//! | `0x85` | Pong             | empty                              |
//! | `0x86` | Error            | error                              |
//! | `0x87` | Window response  | window answers                     |
//! | `0x88` | Report ack       | report ack                         |
//!
//! Composite payload grammar (`str` = `u32` length + UTF-8 bytes,
//! `rect` = 4 × `f64` as `x0 y0 x1 y1`):
//!
//! * query   = `str` key, `u32` n, n × rect
//! * window  = `str` keyspace, `u64` epoch_start, `u64` epoch_end,
//!   `u32` n, n × rect
//! * window answers = `str` keyspace, `u32` m, m × (`u64` start,
//!   `u64` end), `u32` n, n × `f64`
//! * answers = `str` key, `u64` version, `u8` cache (0 warm, 1 cold),
//!   `u32` n, n × `f64`
//! * report batch = `str` keyspace, `u64` epoch, `f64` epsilon,
//!   `u32` cells, `u8` oracle tag — 0 (GRR) is followed by `u32` n,
//!   n × `u32` cell index; 1 (OUE) by `u32` count,
//!   count × `⌈cells/64⌉` packed `u64` words. Both element counts are
//!   hostile-length-prefix guarded against the remaining payload
//!   before any buffer trusts them
//! * report ack = `str` keyspace, `u64` epoch, `u64` accepted,
//!   `u64` epoch_total
//! * outcome = `u8` tag (0 answered, 1 failed) + answers / error
//! * error   = `u8` code (see [`code_byte`]), `str` message, `u8`
//!   overload flag, then 2 × `u64` (`inflight_rects`, `limit`) when
//!   the flag is 1
//! * stats   = `requests answers unknown_keys shed inflight_rects
//!   admission_limit releases warm capacity budget_bytes
//!   resident_bytes lookups warm_hits compilations evictions`, each a
//!   `u64` (`usize` fields travel as `u64`; `usize::MAX` bounds stay
//!   `u64::MAX` on the wire), then an *optional* transport tail:
//!   `u8` flag 1 + 7 × `u64` (`accepted active frames_decoded
//!   read_stalls write_stalls bytes_in bytes_out`), then an optional
//!   8th `u64` (`reports_accepted`) written only when nonzero. The
//!   tail is additive within v2: `transport: None` writes no tail at
//!   all (byte-identical to the pre-transport encoding), a payload
//!   that ends after the 15 counters decodes with `transport: None`,
//!   and a tail that ends after 7 words decodes with
//!   `reports_accepted: 0` — so a server that has absorbed no reports
//!   stays byte-identical to the pre-`Report` encoding
//!
//! Unlike JSON — which cannot carry non-finite numbers — a binary
//! rect travels bit-exact, NaN included; boundary validation in
//! [`super::WireRect::validate`] is what rejects it, so both codecs
//! refuse exactly the same rectangles for exactly the same reason.
//!
//! # Allocation discipline
//!
//! Encoders append into a caller-owned `Vec<u8>` that is cleared, not
//! shrunk — a connection reusing one buffer per direction reaches a
//! steady state where encoding allocates nothing. Decoders borrow the
//! payload slice and allocate only the owned frame values they return.
//! Servers keep header and payload apart
//! ([`encode_response_payload`] + [`encode_header`]) so the response
//! goes out as one vectored write; clients append whole frames back to
//! back ([`append_request`]) to pipeline many requests into one write.

use super::{
    ErrorCode, OverloadInfo, RequestBody, ResponseBody, WireAnswers, WireEpochSpan, WireError,
    WireOutcome, WireQuery, WireRect, WireReportAck, WireReportBatch, WireRequest, WireResponse,
    WireWindow, WireWindowAnswers, MAX_FRAME_BYTES,
};
use crate::catalog::{CacheState, CatalogStats};
use crate::engine::{EngineStats, KernelBackend, TransportStats};

/// The binary codec's protocol version, as offered/negotiated in
/// [`super::HelloOffer`]/[`super::HelloAck`] and carried in every
/// frame header.
pub const PROTOCOL_VERSION: u32 = 2;

/// First two bytes of every binary frame. Both are UTF-8 continuation
/// bytes: no JSON line can start with them, and no binary frame can
/// decode as the start of a JSON line.
pub const MAGIC: [u8; 2] = [0xD6, 0xB2];

/// Fixed size of the frame header.
pub const HEADER_BYTES: usize = 16;

/// Upper bound on one frame's payload: the protocol-wide
/// [`MAX_FRAME_BYTES`] minus the header, shared by both directions so
/// an oversized frame fails fast and attributably at the sender.
pub const MAX_PAYLOAD_BYTES: usize = MAX_FRAME_BYTES - HEADER_BYTES;

/// The frame type bytes. Requests are `0x0_`, responses `0x8_`; the
/// table is append-only, mirroring the JSON codec's stable variant
/// names.
pub mod frame_type {
    /// [`crate::wire::RequestBody::Query`].
    pub const QUERY: u8 = 0x01;
    /// [`crate::wire::RequestBody::Batch`].
    pub const BATCH: u8 = 0x02;
    /// [`crate::wire::RequestBody::Stats`].
    pub const STATS: u8 = 0x03;
    /// [`crate::wire::RequestBody::Keys`].
    pub const KEYS: u8 = 0x04;
    /// [`crate::wire::RequestBody::Ping`].
    pub const PING: u8 = 0x05;
    /// [`crate::wire::RequestBody::Window`].
    pub const WINDOW: u8 = 0x06;
    /// [`crate::wire::RequestBody::Report`].
    pub const REPORT: u8 = 0x07;
    /// [`crate::wire::ResponseBody::Answers`].
    pub const ANSWERS: u8 = 0x81;
    /// [`crate::wire::ResponseBody::Batch`].
    pub const BATCH_RESPONSE: u8 = 0x82;
    /// [`crate::wire::ResponseBody::Stats`].
    pub const STATS_RESPONSE: u8 = 0x83;
    /// [`crate::wire::ResponseBody::Keys`].
    pub const KEYS_RESPONSE: u8 = 0x84;
    /// [`crate::wire::ResponseBody::Pong`].
    pub const PONG: u8 = 0x85;
    /// [`crate::wire::ResponseBody::Error`].
    pub const ERROR: u8 = 0x86;
    /// [`crate::wire::ResponseBody::Window`].
    pub const WINDOW_RESPONSE: u8 = 0x87;
    /// [`crate::wire::ResponseBody::Report`].
    pub const REPORT_RESPONSE: u8 = 0x88;
}

/// The stable wire byte of each [`ErrorCode`] — append-only, the
/// binary counterpart of the JSON codec's stable variant names.
pub fn code_byte(code: ErrorCode) -> u8 {
    match code {
        ErrorCode::UnknownKey => 0,
        ErrorCode::InvalidQuery => 1,
        ErrorCode::Overloaded => 2,
        ErrorCode::MalformedRequest => 3,
        ErrorCode::UnsupportedVersion => 4,
        ErrorCode::Internal => 5,
    }
}

fn byte_code(byte: u8) -> Result<ErrorCode, WireError> {
    Ok(match byte {
        0 => ErrorCode::UnknownKey,
        1 => ErrorCode::InvalidQuery,
        2 => ErrorCode::Overloaded,
        3 => ErrorCode::MalformedRequest,
        4 => ErrorCode::UnsupportedVersion,
        5 => ErrorCode::Internal,
        other => return Err(malformed(format!("unknown error code byte {other}"))),
    })
}

/// A decoded frame header: everything before the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The frame type byte (see [`frame_type`]).
    pub frame_type: u8,
    /// The correlation id.
    pub id: u64,
    /// Bytes of payload that follow, already checked against
    /// [`MAX_PAYLOAD_BYTES`].
    pub payload_len: usize,
}

/// Builds the header for a frame of `payload_len` payload bytes.
pub fn encode_header(frame_type: u8, id: u64, payload_len: usize) -> [u8; HEADER_BYTES] {
    let mut header = [0u8; HEADER_BYTES];
    header[0..2].copy_from_slice(&MAGIC);
    header[2] = PROTOCOL_VERSION as u8;
    header[3] = frame_type;
    header[4..12].copy_from_slice(&id.to_le_bytes());
    header[12..16].copy_from_slice(&(payload_len as u32).to_le_bytes());
    header
}

/// Validates and decodes one frame header, distinguishing the
/// violations a transport must treat differently: a foreign version in
/// an otherwise well-formed header is [`ErrorCode::UnsupportedVersion`];
/// wrong magic or an oversized length prefix is
/// [`ErrorCode::MalformedRequest`] — byte framing is lost after either,
/// so transports reject typed and close the connection.
pub fn decode_header(bytes: &[u8; HEADER_BYTES]) -> Result<FrameHeader, WireError> {
    if bytes[0..2] != MAGIC {
        return Err(malformed(format!(
            "not a binary frame: magic {:02x} {:02x}, expected {:02x} {:02x}",
            bytes[0], bytes[1], MAGIC[0], MAGIC[1]
        )));
    }
    if u32::from(bytes[2]) != PROTOCOL_VERSION {
        return Err(WireError::new(
            ErrorCode::UnsupportedVersion,
            format!(
                "frame speaks binary protocol {}, this peer speaks {PROTOCOL_VERSION}",
                bytes[2]
            ),
        ));
    }
    let id = u64::from_le_bytes(bytes[4..12].try_into().expect("8 header bytes"));
    let payload_len =
        u32::from_le_bytes(bytes[12..16].try_into().expect("4 header bytes")) as usize;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(malformed(format!(
            "length prefix {payload_len} exceeds the {MAX_PAYLOAD_BYTES} byte payload cap"
        )));
    }
    Ok(FrameHeader {
        frame_type: bytes[3],
        id,
        payload_len,
    })
}

/// Encodes one request's payload into `out` (cleared first, capacity
/// kept), returning the frame type byte for [`encode_header`]. Fails
/// for [`RequestBody::Hello`] — negotiation frames travel as JSON v1
/// by definition — and for a payload past [`MAX_PAYLOAD_BYTES`].
pub fn encode_request_payload(body: &RequestBody, out: &mut Vec<u8>) -> Result<u8, WireError> {
    out.clear();
    let frame_type = append_request_payload(body, out)?;
    check_payload_len(out.len())?;
    Ok(frame_type)
}

/// Encodes one response's payload into `out` (cleared first, capacity
/// kept), returning the frame type byte for [`encode_header`] — the
/// server half of [`encode_request_payload`], kept separate from the
/// header so the response goes out as one vectored write. Fails for
/// [`ResponseBody::Hello`] and for a payload past
/// [`MAX_PAYLOAD_BYTES`].
pub fn encode_response_payload(body: &ResponseBody, out: &mut Vec<u8>) -> Result<u8, WireError> {
    out.clear();
    let frame_type = append_response_payload(body, out)?;
    check_payload_len(out.len())?;
    Ok(frame_type)
}

/// Encodes one complete request frame (header + payload) into `out`
/// (cleared first, capacity kept).
pub fn encode_request(request: &WireRequest, out: &mut Vec<u8>) -> Result<(), WireError> {
    out.clear();
    append_request(request, out)
}

/// Appends one complete request frame to `out` **without clearing
/// it** — the pipelining primitive: a client encodes N id-correlated
/// frames back to back into one buffer and ships them with one write.
/// A refused frame (Hello, oversized) leaves `out` exactly as it was.
pub fn append_request(request: &WireRequest, out: &mut Vec<u8>) -> Result<(), WireError> {
    let start = out.len();
    out.extend_from_slice(&[0u8; HEADER_BYTES]);
    let frame_type = match append_request_payload(&request.body, out) {
        Ok(frame_type) => frame_type,
        Err(e) => {
            out.truncate(start);
            return Err(e);
        }
    };
    let payload_len = out.len() - start - HEADER_BYTES;
    if let Err(e) = check_payload_len(payload_len) {
        out.truncate(start);
        return Err(e);
    }
    out[start..start + HEADER_BYTES].copy_from_slice(&encode_header(
        frame_type,
        request.id,
        payload_len,
    ));
    Ok(())
}

/// Appends one complete Query frame encoded straight from its parts —
/// the pipelining client's hot path, skipping the owned
/// [`WireQuery`]. Same unwind guarantee as [`append_request`].
pub fn append_query(
    id: u64,
    release_key: &str,
    rects: &[WireRect],
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    let start = out.len();
    out.extend_from_slice(&[0u8; HEADER_BYTES]);
    put_str(out, release_key);
    put_u32(out, rects.len());
    for rect in rects {
        put_rect(out, rect);
    }
    let payload_len = out.len() - start - HEADER_BYTES;
    if let Err(e) = check_payload_len(payload_len) {
        out.truncate(start);
        return Err(e);
    }
    out[start..start + HEADER_BYTES].copy_from_slice(&encode_header(
        frame_type::QUERY,
        id,
        payload_len,
    ));
    Ok(())
}

/// Appends one complete Report frame encoded straight from a borrowed
/// batch — the report-submitting client's hot path, skipping the owned
/// [`RequestBody`]. Same unwind guarantee as [`append_request`].
pub fn append_report(id: u64, batch: &WireReportBatch, out: &mut Vec<u8>) -> Result<(), WireError> {
    let start = out.len();
    out.extend_from_slice(&[0u8; HEADER_BYTES]);
    if let Err(e) = put_report(out, batch) {
        out.truncate(start);
        return Err(e);
    }
    let payload_len = out.len() - start - HEADER_BYTES;
    if let Err(e) = check_payload_len(payload_len) {
        out.truncate(start);
        return Err(e);
    }
    out[start..start + HEADER_BYTES].copy_from_slice(&encode_header(
        frame_type::REPORT,
        id,
        payload_len,
    ));
    Ok(())
}

/// Encodes one complete response frame (header + payload) into `out`
/// (cleared first, capacity kept).
pub fn encode_response(response: &WireResponse, out: &mut Vec<u8>) -> Result<(), WireError> {
    out.clear();
    out.extend_from_slice(&[0u8; HEADER_BYTES]);
    let frame_type = append_response_payload(&response.body, out)?;
    let payload_len = out.len() - HEADER_BYTES;
    check_payload_len(payload_len)?;
    out[..HEADER_BYTES].copy_from_slice(&encode_header(frame_type, response.id, payload_len));
    Ok(())
}

fn append_request_payload(body: &RequestBody, out: &mut Vec<u8>) -> Result<u8, WireError> {
    Ok(match body {
        RequestBody::Query(query) => {
            put_query(out, query);
            frame_type::QUERY
        }
        RequestBody::Batch(queries) => {
            put_u32(out, queries.len());
            for query in queries {
                put_query(out, query);
            }
            frame_type::BATCH
        }
        RequestBody::Stats => frame_type::STATS,
        RequestBody::Keys => frame_type::KEYS,
        RequestBody::Ping => frame_type::PING,
        RequestBody::Window(window) => {
            put_str(out, &window.keyspace);
            put_u64(out, window.epoch_start);
            put_u64(out, window.epoch_end);
            put_u32(out, window.rects.len());
            for rect in &window.rects {
                put_rect(out, rect);
            }
            frame_type::WINDOW
        }
        RequestBody::Report(batch) => {
            put_report(out, batch)?;
            frame_type::REPORT
        }
        RequestBody::Hello(_) => {
            return Err(malformed(
                "Hello frames negotiate the codec and always travel as JSON v1",
            ))
        }
    })
}

fn append_response_payload(body: &ResponseBody, out: &mut Vec<u8>) -> Result<u8, WireError> {
    Ok(match body {
        ResponseBody::Answers(answers) => {
            put_answers(out, answers);
            frame_type::ANSWERS
        }
        ResponseBody::Batch(outcomes) => {
            put_u32(out, outcomes.len());
            for outcome in outcomes {
                match outcome {
                    WireOutcome::Answered(answers) => {
                        out.push(0);
                        put_answers(out, answers);
                    }
                    WireOutcome::Failed(error) => {
                        out.push(1);
                        put_error(out, error);
                    }
                }
            }
            frame_type::BATCH_RESPONSE
        }
        ResponseBody::Stats(stats) => {
            put_stats(out, stats);
            frame_type::STATS_RESPONSE
        }
        ResponseBody::Keys(keys) => {
            put_u32(out, keys.len());
            for key in keys {
                put_str(out, key);
            }
            frame_type::KEYS_RESPONSE
        }
        ResponseBody::Pong => frame_type::PONG,
        ResponseBody::Error(error) => {
            put_error(out, error);
            frame_type::ERROR
        }
        ResponseBody::Window(answers) => {
            put_str(out, &answers.keyspace);
            put_u32(out, answers.covered.len());
            for span in &answers.covered {
                put_u64(out, span.start);
                put_u64(out, span.end);
            }
            put_u32(out, answers.answers.len());
            for &x in &answers.answers {
                put_f64(out, x);
            }
            frame_type::WINDOW_RESPONSE
        }
        ResponseBody::Report(ack) => {
            put_str(out, &ack.keyspace);
            put_u64(out, ack.epoch);
            put_u64(out, ack.accepted);
            put_u64(out, ack.epoch_total);
            frame_type::REPORT_RESPONSE
        }
        ResponseBody::Hello(_) => {
            return Err(malformed(
                "Hello frames negotiate the codec and always travel as JSON v1",
            ))
        }
    })
}

/// Decodes one request from its header and exactly `payload_len`
/// payload bytes. A payload truncated relative to its own grammar,
/// carrying trailing bytes, or using a response frame type is
/// [`ErrorCode::MalformedRequest`]. The decoded frame carries
/// [`PROTOCOL_VERSION`] (2) as its `protocol_version`.
pub fn decode_request(header: &FrameHeader, payload: &[u8]) -> Result<WireRequest, WireError> {
    let mut r = Reader::new(payload);
    let body = match header.frame_type {
        frame_type::QUERY => RequestBody::Query(r.query()?),
        frame_type::BATCH => {
            let n = r.len_prefix("batch queries")?;
            let mut queries = Vec::with_capacity(n);
            for _ in 0..n {
                queries.push(r.query()?);
            }
            RequestBody::Batch(queries)
        }
        frame_type::STATS => RequestBody::Stats,
        frame_type::KEYS => RequestBody::Keys,
        frame_type::PING => RequestBody::Ping,
        frame_type::WINDOW => {
            let keyspace = r.string()?;
            let epoch_start = r.u64()?;
            let epoch_end = r.u64()?;
            let n = r.len_prefix_of("rect", 32)?;
            let mut rects = Vec::with_capacity(n);
            for _ in 0..n {
                rects.push(r.rect()?);
            }
            RequestBody::Window(WireWindow {
                keyspace,
                epoch_start,
                epoch_end,
                rects,
            })
        }
        frame_type::REPORT => RequestBody::Report(r.report()?),
        other => {
            return Err(malformed(format!(
                "frame type {other:#04x} is not a request"
            )))
        }
    };
    r.finish()?;
    Ok(WireRequest {
        protocol_version: PROTOCOL_VERSION,
        id: header.id,
        body,
    })
}

/// Decodes one response from its header and payload — the client side
/// of [`decode_request`], with the same rejection rules.
pub fn decode_response(header: &FrameHeader, payload: &[u8]) -> Result<WireResponse, WireError> {
    let mut r = Reader::new(payload);
    let body = match header.frame_type {
        frame_type::ANSWERS => ResponseBody::Answers(r.answers()?),
        frame_type::BATCH_RESPONSE => {
            let n = r.len_prefix("batch outcomes")?;
            let mut outcomes = Vec::with_capacity(n);
            for _ in 0..n {
                outcomes.push(match r.u8()? {
                    0 => WireOutcome::Answered(r.answers()?),
                    1 => WireOutcome::Failed(r.error()?),
                    tag => return Err(malformed(format!("unknown outcome tag {tag}"))),
                });
            }
            ResponseBody::Batch(outcomes)
        }
        frame_type::STATS_RESPONSE => ResponseBody::Stats(r.stats()?),
        frame_type::KEYS_RESPONSE => {
            let n = r.len_prefix("keys")?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.string()?);
            }
            ResponseBody::Keys(keys)
        }
        frame_type::PONG => ResponseBody::Pong,
        frame_type::ERROR => ResponseBody::Error(r.error()?),
        frame_type::WINDOW_RESPONSE => {
            let keyspace = r.string()?;
            let m = r.len_prefix_of("covered span", 16)?;
            let mut covered = Vec::with_capacity(m);
            for _ in 0..m {
                covered.push(WireEpochSpan {
                    start: r.u64()?,
                    end: r.u64()?,
                });
            }
            let n = r.len_prefix_of("answer", 8)?;
            let mut answers = Vec::with_capacity(n);
            for _ in 0..n {
                answers.push(r.f64()?);
            }
            ResponseBody::Window(WireWindowAnswers {
                keyspace,
                covered,
                answers,
            })
        }
        frame_type::REPORT_RESPONSE => ResponseBody::Report(WireReportAck {
            keyspace: r.string()?,
            epoch: r.u64()?,
            accepted: r.u64()?,
            epoch_total: r.u64()?,
        }),
        other => {
            return Err(malformed(format!(
                "frame type {other:#04x} is not a response"
            )))
        }
    };
    r.finish()?;
    Ok(WireResponse {
        protocol_version: PROTOCOL_VERSION,
        id: header.id,
        body,
    })
}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::MalformedRequest, message)
}

fn check_payload_len(payload_len: usize) -> Result<(), WireError> {
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(malformed(format!(
            "frame payload of {payload_len} bytes exceeds the {MAX_PAYLOAD_BYTES} byte cap; \
             split the batch"
        )));
    }
    Ok(())
}

// --- payload writers -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_rect(out: &mut Vec<u8>, rect: &WireRect) {
    put_f64(out, rect.x0);
    put_f64(out, rect.y0);
    put_f64(out, rect.x1);
    put_f64(out, rect.y1);
}

fn put_query(out: &mut Vec<u8>, query: &WireQuery) {
    put_str(out, &query.release_key);
    put_u32(out, query.rects.len());
    for rect in &query.rects {
        put_rect(out, rect);
    }
}

fn put_report(out: &mut Vec<u8>, batch: &WireReportBatch) -> Result<(), WireError> {
    put_str(out, &batch.keyspace);
    put_u64(out, batch.epoch);
    put_f64(out, batch.epsilon);
    put_u32(out, batch.cells as usize);
    match batch.oracle.as_str() {
        "grr" => {
            out.push(0);
            put_u32(out, batch.grr.len());
            for &cell in &batch.grr {
                put_u32(out, cell as usize);
            }
        }
        "oue" => {
            out.push(1);
            put_u32(out, batch.oue_count as usize);
            for &word in &batch.oue_bits {
                put_u64(out, word);
            }
        }
        other => {
            return Err(malformed(format!(
                "unknown oracle tag {other:?}: expected \"grr\" or \"oue\""
            )))
        }
    }
    Ok(())
}

fn put_answers(out: &mut Vec<u8>, answers: &WireAnswers) {
    put_str(out, &answers.release_key);
    put_u64(out, answers.version);
    out.push(match answers.cache {
        CacheState::Warm => 0,
        CacheState::Cold => 1,
    });
    put_u32(out, answers.answers.len());
    for &x in &answers.answers {
        put_f64(out, x);
    }
}

fn put_error(out: &mut Vec<u8>, error: &WireError) {
    out.push(code_byte(error.code));
    put_str(out, &error.message);
    match error.overload {
        None => out.push(0),
        Some(info) => {
            out.push(1);
            put_u64(out, info.inflight_rects);
            put_u64(out, info.limit);
        }
    }
}

fn put_stats(out: &mut Vec<u8>, stats: &EngineStats) {
    put_u64(out, stats.requests);
    put_u64(out, stats.answers);
    put_u64(out, stats.unknown_keys);
    put_u64(out, stats.shed);
    put_u64(out, stats.inflight_rects);
    put_u64(out, stats.admission_limit);
    put_u64(out, stats.catalog.releases as u64);
    put_u64(out, stats.catalog.warm as u64);
    put_u64(out, stats.catalog.capacity as u64);
    put_u64(out, stats.catalog.budget_bytes as u64);
    put_u64(out, stats.catalog.resident_bytes as u64);
    put_u64(out, stats.catalog.lookups);
    put_u64(out, stats.catalog.warm_hits);
    put_u64(out, stats.catalog.compilations);
    put_u64(out, stats.catalog.evictions);
    // Neither optional present writes no tail at all (not even the
    // flag), so an in-process engine's stats payload is byte-identical
    // to the pre-transport encoding and old strict decoders keep
    // accepting it. Otherwise the flag is a bitmask: bit 0 = transport
    // counters follow, bit 1 = a kernel-backend byte follows them.
    let backend = stats.kernel_backend;
    if stats.transport.is_none() && backend.is_none() {
        return;
    }
    let flag = stats.transport.is_some() as u8 | (backend.is_some() as u8) << 1;
    out.push(flag);
    if let Some(t) = &stats.transport {
        put_u64(out, t.accepted);
        put_u64(out, t.active);
        put_u64(out, t.frames_decoded);
        put_u64(out, t.read_stalls);
        put_u64(out, t.write_stalls);
        put_u64(out, t.bytes_in);
        put_u64(out, t.bytes_out);
        // Second additive extension: without a backend byte,
        // `reports_accepted` is written only when nonzero, so a server
        // that has absorbed no reports encodes a tail byte-identical
        // to the pre-`Report` layout and old strict decoders keep
        // accepting it. With a backend byte following, the word is
        // always written — the flag's bit 1 disambiguates, and the
        // backend byte must not be mistaken for this word.
        if t.reports_accepted > 0 || backend.is_some() {
            put_u64(out, t.reports_accepted);
        }
    }
    if let Some(b) = backend {
        out.push(match b {
            KernelBackend::Scalar => 0,
            KernelBackend::Avx2 => 1,
            KernelBackend::Mixed => 2,
        });
    }
}

// --- payload reader --------------------------------------------------

/// A cursor over one payload slice with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(malformed(format!(
                "payload truncated: wanted {n} bytes at offset {}, payload is {}",
                self.pos,
                self.bytes.len()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A `u32` element count bounded by what the payload can still
    /// hold (`bytes_each` per element), so a hostile length prefix is
    /// rejected *before* any `Vec::with_capacity` trusts it.
    fn len_prefix_of(&mut self, what: &str, bytes_each: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() / bytes_each {
            return Err(malformed(format!(
                "{what} count {n} exceeds the {} remaining payload bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn len_prefix(&mut self, what: &str) -> Result<usize, WireError> {
        self.len_prefix_of(what, 1)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| malformed(format!("string payload is not UTF-8: {e}")))
    }

    fn rect(&mut self) -> Result<WireRect, WireError> {
        Ok(WireRect {
            x0: self.f64()?,
            y0: self.f64()?,
            x1: self.f64()?,
            y1: self.f64()?,
        })
    }

    fn query(&mut self) -> Result<WireQuery, WireError> {
        let release_key = self.string()?;
        let n = self.len_prefix_of("rect", 32)?;
        let mut rects = Vec::with_capacity(n);
        for _ in 0..n {
            rects.push(self.rect()?);
        }
        Ok(WireQuery { release_key, rects })
    }

    fn answers(&mut self) -> Result<WireAnswers, WireError> {
        let release_key = self.string()?;
        let version = self.u64()?;
        let cache = match self.u8()? {
            0 => CacheState::Warm,
            1 => CacheState::Cold,
            byte => return Err(malformed(format!("unknown cache state byte {byte}"))),
        };
        let n = self.len_prefix_of("answer", 8)?;
        let mut answers = Vec::with_capacity(n);
        for _ in 0..n {
            answers.push(self.f64()?);
        }
        Ok(WireAnswers {
            release_key,
            version,
            cache,
            answers,
        })
    }

    fn report(&mut self) -> Result<WireReportBatch, WireError> {
        let keyspace = self.string()?;
        let epoch = self.u64()?;
        let epsilon = self.f64()?;
        let cells = self.u32()?;
        let mut batch = WireReportBatch {
            keyspace,
            epoch,
            epsilon,
            cells,
            oracle: String::new(),
            grr: Vec::new(),
            oue_count: 0,
            oue_bits: Vec::new(),
        };
        match self.u8()? {
            0 => {
                batch.oracle = "grr".into();
                let n = self.len_prefix_of("GRR report", 4)?;
                let mut reports = Vec::with_capacity(n);
                for _ in 0..n {
                    reports.push(self.u32()?);
                }
                batch.grr = reports;
            }
            1 => {
                batch.oracle = "oue".into();
                batch.oue_count = self.u32()?;
                // The word total is count × ⌈cells/64⌉ — both factors
                // arrive from the wire, so bound their product by the
                // remaining payload before any buffer trusts it. A
                // degenerate `cells` (0 ⇒ zero words) decodes to an
                // empty vector that shape validation rejects typed.
                let words_each = (cells as usize).div_ceil(64);
                let remaining = self.remaining();
                let total = (batch.oue_count as usize)
                    .checked_mul(words_each)
                    .filter(|&total| total <= remaining / 8)
                    .ok_or_else(|| {
                        malformed(format!(
                            "OUE word count {} × {words_each} exceeds the {remaining} \
                             remaining payload bytes",
                            batch.oue_count
                        ))
                    })?;
                let mut bits = Vec::with_capacity(total);
                for _ in 0..total {
                    bits.push(self.u64()?);
                }
                batch.oue_bits = bits;
            }
            tag => return Err(malformed(format!("unknown oracle tag byte {tag}"))),
        }
        Ok(batch)
    }

    fn error(&mut self) -> Result<WireError, WireError> {
        let code = byte_code(self.u8()?)?;
        let message = self.string()?;
        let overload = match self.u8()? {
            0 => None,
            1 => Some(OverloadInfo {
                inflight_rects: self.u64()?,
                limit: self.u64()?,
            }),
            byte => return Err(malformed(format!("unknown overload flag byte {byte}"))),
        };
        Ok(WireError {
            code,
            message,
            overload,
        })
    }

    fn stats(&mut self) -> Result<EngineStats, WireError> {
        let mut stats = EngineStats {
            requests: self.u64()?,
            answers: self.u64()?,
            unknown_keys: self.u64()?,
            shed: self.u64()?,
            inflight_rects: self.u64()?,
            admission_limit: self.u64()?,
            catalog: CatalogStats {
                releases: self.u64()? as usize,
                warm: self.u64()? as usize,
                capacity: self.u64()? as usize,
                budget_bytes: self.u64()? as usize,
                resident_bytes: self.u64()? as usize,
                lookups: self.u64()?,
                warm_hits: self.u64()?,
                compilations: self.u64()?,
                evictions: self.u64()?,
            },
            transport: None,
            kernel_backend: None,
        };
        // Additive tail: a pre-transport peer's payload ends here,
        // which is exactly the all-`None` case. The flag is a bitmask
        // (bit 0 = transport counters, bit 1 = kernel-backend byte);
        // older peers only ever wrote 0 or 1.
        if self.remaining() > 0 {
            let flag = self.u8()?;
            if flag > 3 {
                return Err(malformed(format!("unknown stats tail flag byte {flag}")));
            }
            let has_backend = flag & 2 != 0;
            if flag & 1 != 0 {
                let mut t = TransportStats {
                    accepted: self.u64()?,
                    active: self.u64()?,
                    frames_decoded: self.u64()?,
                    read_stalls: self.u64()?,
                    write_stalls: self.u64()?,
                    bytes_in: self.u64()?,
                    bytes_out: self.u64()?,
                    reports_accepted: 0,
                };
                // Without a backend byte, a tail ending after 7 words
                // is a pre-`Report` peer — exactly the
                // `reports_accepted: 0` case. With one, the word is
                // always present (the encoder guarantees it).
                if has_backend || self.remaining() > 0 {
                    t.reports_accepted = self.u64()?;
                }
                stats.transport = Some(t);
            }
            if has_backend {
                stats.kernel_backend = Some(match self.u8()? {
                    0 => KernelBackend::Scalar,
                    1 => KernelBackend::Avx2,
                    2 => KernelBackend::Mixed,
                    byte => return Err(malformed(format!("unknown kernel backend byte {byte}"))),
                });
            }
        }
        Ok(stats)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(malformed(format!(
                "{} trailing payload bytes after the frame",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::{hello_ack, HelloOffer};
    use super::*;

    fn roundtrip_request(request: &WireRequest) -> WireRequest {
        let mut buf = Vec::new();
        encode_request(request, &mut buf).expect("encodes");
        let header =
            decode_header(buf[..HEADER_BYTES].try_into().expect("header")).expect("header decodes");
        assert_eq!(header.payload_len, buf.len() - HEADER_BYTES);
        assert_eq!(header.id, request.id);
        decode_request(&header, &buf[HEADER_BYTES..]).expect("payload decodes")
    }

    fn roundtrip_response(response: &WireResponse) -> WireResponse {
        let mut buf = Vec::new();
        encode_response(response, &mut buf).expect("encodes");
        let header =
            decode_header(buf[..HEADER_BYTES].try_into().expect("header")).expect("header decodes");
        assert_eq!(header.id, response.id);
        decode_response(&header, &buf[HEADER_BYTES..]).expect("payload decodes")
    }

    #[test]
    fn query_frames_roundtrip_bit_exact() {
        let request = WireRequest::new(
            0xDEAD_BEEF_CAFE,
            RequestBody::Query(WireQuery {
                release_key: "ünïcødé-κλειδί-鍵 \"quoted\"\nline".into(),
                rects: vec![
                    WireRect {
                        x0: -130.0,
                        y0: 10.0,
                        x1: -70.0,
                        y1: 50.0,
                    },
                    WireRect {
                        x0: -0.0,
                        y0: f64::MIN_POSITIVE,
                        x1: 1e300,
                        y1: f64::NAN,
                    },
                ],
            }),
        );
        let back = roundtrip_request(&request);
        assert_eq!(back.id, request.id);
        let (RequestBody::Query(a), RequestBody::Query(b)) = (&back.body, &request.body) else {
            panic!("query survives");
        };
        assert_eq!(a.release_key, b.release_key);
        // Bit-exact floats, checked through to_bits (NaN fails
        // PartialEq, and this codec must carry it to the validator).
        for (ra, rb) in a.rects.iter().zip(&b.rects) {
            for (va, vb) in [
                (ra.x0, rb.x0),
                (ra.y0, rb.y0),
                (ra.x1, rb.x1),
                (ra.y1, rb.y1),
            ] {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn control_frames_roundtrip() {
        for body in [RequestBody::Stats, RequestBody::Keys, RequestBody::Ping] {
            let request = WireRequest::new(7, body);
            assert_eq!(roundtrip_request(&request).body, request.body);
        }
        let response = WireResponse::new(7, ResponseBody::Pong);
        assert_eq!(roundtrip_response(&response).body, response.body);
    }

    #[test]
    fn stats_transport_tail_is_additive() {
        let mut stats = EngineStats {
            requests: 10,
            answers: 20,
            shed: 1,
            ..EngineStats::default()
        };

        // Without transport counters the payload is exactly the
        // pre-transport 15 × u64 encoding — no tail, not even a flag.
        let mut payload = Vec::new();
        put_stats(&mut payload, &stats);
        assert_eq!(payload.len(), 15 * 8);

        stats.transport = Some(TransportStats {
            accepted: 5,
            active: 2,
            frames_decoded: 100,
            read_stalls: 1,
            write_stalls: 3,
            bytes_in: 4096,
            bytes_out: 1 << 20,
            reports_accepted: 0,
        });
        let response = WireResponse::new(9, ResponseBody::Stats(stats));
        assert_eq!(roundtrip_response(&response).body, response.body);

        // `reports_accepted: 0` encodes byte-identical to the
        // 7-word pre-`Report` tail; nonzero appends an 8th word and
        // still round-trips.
        let mut zero_tail = Vec::new();
        put_stats(&mut zero_tail, &stats);
        assert_eq!(zero_tail.len(), 15 * 8 + 1 + 7 * 8);
        let mut counting = stats;
        counting.transport.as_mut().unwrap().reports_accepted = 42;
        let mut report_tail = Vec::new();
        put_stats(&mut report_tail, &counting);
        assert_eq!(report_tail.len(), zero_tail.len() + 8);
        let response = WireResponse::new(9, ResponseBody::Stats(counting));
        assert_eq!(roundtrip_response(&response).body, response.body);

        // A pre-transport peer's payload (15 counters, nothing after)
        // decodes with `transport: None`, not an error.
        let mut short = Vec::new();
        put_stats(
            &mut short,
            &EngineStats {
                transport: None,
                ..stats
            },
        );
        let header = FrameHeader {
            frame_type: frame_type::STATS_RESPONSE,
            id: 9,
            payload_len: short.len(),
        };
        match decode_response(&header, &short).unwrap().body {
            ResponseBody::Stats(decoded) => {
                assert_eq!(decoded.transport, None);
                assert_eq!(decoded.requests, 10);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        // A truncated tail is still a truncation error.
        let mut buf = Vec::new();
        encode_response(&WireResponse::new(9, ResponseBody::Stats(stats)), &mut buf).unwrap();
        let header = FrameHeader {
            frame_type: frame_type::STATS_RESPONSE,
            id: 9,
            payload_len: buf.len() - HEADER_BYTES - 8,
        };
        let err = decode_response(&header, &buf[HEADER_BYTES..buf.len() - 8]).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
    }

    #[test]
    fn window_frames_roundtrip() {
        let request = WireRequest::new(
            41,
            RequestBody::Window(WireWindow {
                keyspace: "taxi@西".into(),
                epoch_start: 3,
                epoch_end: u64::MAX - 1,
                rects: vec![WireRect {
                    x0: -130.0,
                    y0: 10.0,
                    x1: -70.0,
                    y1: 50.0,
                }],
            }),
        );
        assert_eq!(roundtrip_request(&request).body, request.body);

        let response = WireResponse::new(
            41,
            ResponseBody::Window(WireWindowAnswers {
                keyspace: "taxi@西".into(),
                covered: vec![
                    WireEpochSpan { start: 0, end: 4 },
                    WireEpochSpan { start: 4, end: 5 },
                ],
                answers: vec![12.5, -0.25, 0.0],
            }),
        );
        assert_eq!(roundtrip_response(&response).body, response.body);

        // Hostile span counts are rejected before allocation, like
        // every other length prefix in this codec.
        let mut payload = Vec::new();
        put_str(&mut payload, "k");
        put_u32(&mut payload, 1 << 30);
        let header = FrameHeader {
            frame_type: frame_type::WINDOW_RESPONSE,
            id: 1,
            payload_len: payload.len(),
        };
        let err = decode_response(&header, &payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
        assert!(
            err.message.contains("covered span count"),
            "{}",
            err.message
        );
    }

    #[test]
    fn decoded_frames_carry_the_binary_version() {
        let request = WireRequest::new(1, RequestBody::Ping);
        assert_eq!(roundtrip_request(&request).protocol_version, 2);
    }

    #[test]
    fn hello_refuses_binary_encoding() {
        let mut buf = Vec::new();
        let offer = WireRequest::new(1, RequestBody::Hello(HelloOffer { max_version: 2 }));
        assert!(encode_request(&offer, &mut buf).is_err());
        assert!(encode_response(&hello_ack(1, 2), &mut buf).is_err());
    }

    #[test]
    fn header_rejections_are_typed() {
        // Bad magic: the first byte of a JSON line, say.
        let mut bytes = encode_header(frame_type::PING, 1, 0);
        bytes[0] = b'{';
        let err = decode_header(&bytes).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);

        // Foreign version in an otherwise well-formed header.
        let mut bytes = encode_header(frame_type::PING, 1, 0);
        bytes[2] = 3;
        let err = decode_header(&bytes).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);

        // Oversized length prefix.
        let mut bytes = encode_header(frame_type::PING, 1, 0);
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_header(&bytes).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
        assert!(err.message.contains("length prefix"), "{}", err.message);
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let request = WireRequest::new(
            3,
            RequestBody::Query(WireQuery {
                release_key: "k".into(),
                rects: vec![WireRect {
                    x0: 0.0,
                    y0: 0.0,
                    x1: 1.0,
                    y1: 1.0,
                }],
            }),
        );
        let mut buf = Vec::new();
        encode_request(&request, &mut buf).unwrap();
        let header = decode_header(buf[..HEADER_BYTES].try_into().unwrap()).unwrap();
        let payload = &buf[HEADER_BYTES..];

        let err = decode_request(&header, &payload[..payload.len() - 1]).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);

        let mut trailing = payload.to_vec();
        trailing.push(0);
        let err = decode_request(&header, &trailing).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
        assert!(err.message.contains("trailing"), "{}", err.message);
    }

    #[test]
    fn hostile_length_prefixes_cannot_force_allocations() {
        // A query whose rect count claims far more than the payload
        // holds must be rejected before any `Vec::with_capacity`.
        let mut payload = Vec::new();
        put_str(&mut payload, "k");
        put_u32(&mut payload, 1 << 30);
        let header = FrameHeader {
            frame_type: frame_type::QUERY,
            id: 1,
            payload_len: payload.len(),
        };
        let err = decode_request(&header, &payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
        assert!(err.message.contains("rect count"), "{}", err.message);
    }

    #[test]
    fn error_code_bytes_are_stable() {
        // The binary stability contract: these exact bytes are the
        // wire form, the counterpart of the JSON codec's stable names.
        for (code, byte) in [
            (ErrorCode::UnknownKey, 0u8),
            (ErrorCode::InvalidQuery, 1),
            (ErrorCode::Overloaded, 2),
            (ErrorCode::MalformedRequest, 3),
            (ErrorCode::UnsupportedVersion, 4),
            (ErrorCode::Internal, 5),
        ] {
            assert_eq!(code_byte(code), byte);
            assert_eq!(byte_code(byte).unwrap(), code);
        }
        assert!(byte_code(6).is_err());
    }

    #[test]
    fn append_request_pipelines_frames_back_to_back() {
        let a = WireRequest::new(1, RequestBody::Ping);
        let b = WireRequest::new(2, RequestBody::Stats);
        let mut buf = Vec::new();
        append_request(&a, &mut buf).unwrap();
        let first_len = buf.len();
        append_request(&b, &mut buf).unwrap();

        let header = decode_header(buf[..HEADER_BYTES].try_into().unwrap()).unwrap();
        assert_eq!(header.id, 1);
        assert_eq!(first_len, HEADER_BYTES + header.payload_len);
        let second = &buf[first_len..];
        let header = decode_header(second[..HEADER_BYTES].try_into().unwrap()).unwrap();
        assert_eq!(header.id, 2);
        assert_eq!(
            decode_request(&header, &second[HEADER_BYTES..])
                .unwrap()
                .body,
            RequestBody::Stats
        );
    }

    #[test]
    fn append_query_matches_the_generic_encoder() {
        let rects = vec![
            WireRect {
                x0: 1.5,
                y0: -2.0,
                x1: 3.25,
                y1: 4.0,
            },
            WireRect {
                x0: 0.0,
                y0: 0.0,
                x1: 1.0,
                y1: 1.0,
            },
        ];
        let mut direct = Vec::new();
        append_query(9, "key", &rects, &mut direct).unwrap();
        let mut generic = Vec::new();
        let request = WireRequest::new(
            9,
            RequestBody::Query(WireQuery {
                release_key: "key".into(),
                rects: rects.clone(),
            }),
        );
        encode_request(&request, &mut generic).unwrap();
        assert_eq!(direct, generic, "two paths, one wire form");
    }

    #[test]
    fn append_request_unwinds_cleanly_on_refusal() {
        let mut buf = Vec::new();
        append_request(&WireRequest::new(1, RequestBody::Ping), &mut buf).unwrap();
        let len = buf.len();
        let hello = WireRequest::new(2, RequestBody::Hello(HelloOffer { max_version: 2 }));
        assert!(append_request(&hello, &mut buf).is_err());
        assert_eq!(buf.len(), len, "refused frame leaves no partial bytes");
    }

    fn grr_batch() -> WireReportBatch {
        WireReportBatch {
            keyspace: "taxi@西".into(),
            epoch: 7,
            epsilon: 0.5,
            cells: 100,
            oracle: "grr".into(),
            grr: vec![0, 99, 42, 42],
            oue_count: 0,
            oue_bits: Vec::new(),
        }
    }

    fn oue_batch() -> WireReportBatch {
        WireReportBatch {
            keyspace: "taxi".into(),
            epoch: 3,
            epsilon: 1.25,
            cells: 100, // 2 words per report
            oracle: "oue".into(),
            grr: Vec::new(),
            oue_count: 3,
            oue_bits: vec![1, 0, u64::MAX >> 30, 1 << 35, 0, 3],
        }
    }

    #[test]
    fn report_frames_roundtrip_both_families() {
        for batch in [grr_batch(), oue_batch()] {
            let request = WireRequest::new(11, RequestBody::Report(batch));
            assert_eq!(roundtrip_request(&request).body, request.body);
        }
        let response = WireResponse::new(
            11,
            ResponseBody::Report(WireReportAck {
                keyspace: "taxi@西".into(),
                epoch: 7,
                accepted: 4,
                epoch_total: 12,
            }),
        );
        assert_eq!(roundtrip_response(&response).body, response.body);
    }

    #[test]
    fn append_report_matches_the_generic_encoder() {
        let batch = oue_batch();
        let mut direct = Vec::new();
        append_report(11, &batch, &mut direct).unwrap();
        let mut generic = Vec::new();
        encode_request(
            &WireRequest::new(11, RequestBody::Report(batch)),
            &mut generic,
        )
        .unwrap();
        assert_eq!(direct, generic, "two paths, one wire form");
    }

    #[test]
    fn hostile_report_counts_cannot_force_allocations() {
        // GRR: a report count claiming far more indices than the
        // payload holds.
        let mut payload = Vec::new();
        put_str(&mut payload, "k");
        put_u64(&mut payload, 1);
        put_f64(&mut payload, 1.0);
        put_u32(&mut payload, 100);
        payload.push(0);
        put_u32(&mut payload, 1 << 30);
        let header = FrameHeader {
            frame_type: frame_type::REPORT,
            id: 1,
            payload_len: payload.len(),
        };
        let err = decode_request(&header, &payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
        assert!(err.message.contains("GRR report count"), "{}", err.message);

        // OUE: count × words overflows what the payload holds (and
        // the product itself is checked, so count × words cannot wrap).
        let mut payload = Vec::new();
        put_str(&mut payload, "k");
        put_u64(&mut payload, 1);
        put_f64(&mut payload, 1.0);
        put_u32(&mut payload, 1 << 20); // 16384 words per report
        payload.push(1);
        put_u32(&mut payload, u32::MAX as usize);
        let header = FrameHeader {
            frame_type: frame_type::REPORT,
            id: 1,
            payload_len: payload.len(),
        };
        let err = decode_request(&header, &payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
        assert!(err.message.contains("OUE word count"), "{}", err.message);

        // An unknown oracle tag byte is rejected typed.
        let mut payload = Vec::new();
        put_str(&mut payload, "k");
        put_u64(&mut payload, 1);
        put_f64(&mut payload, 1.0);
        put_u32(&mut payload, 100);
        payload.push(9);
        let header = FrameHeader {
            frame_type: frame_type::REPORT,
            id: 1,
            payload_len: payload.len(),
        };
        let err = decode_request(&header, &payload).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
        assert!(err.message.contains("oracle tag byte"), "{}", err.message);
    }

    #[test]
    fn report_with_unknown_oracle_refuses_binary_encoding() {
        let mut batch = grr_batch();
        batch.oracle = "psychic".into();
        let mut buf = Vec::new();
        append_request(&WireRequest::new(1, RequestBody::Ping), &mut buf).unwrap();
        let len = buf.len();
        let err = append_report(2, &batch, &mut buf).unwrap_err();
        assert_eq!(err.code, ErrorCode::MalformedRequest);
        assert_eq!(buf.len(), len, "refused frame leaves no partial bytes");
    }

    #[test]
    fn encoding_reuses_buffer_capacity() {
        let request = WireRequest::new(
            1,
            RequestBody::Query(WireQuery {
                release_key: "steady-state".into(),
                rects: (0..64)
                    .map(|i| WireRect {
                        x0: i as f64,
                        y0: 0.0,
                        x1: i as f64 + 1.0,
                        y1: 1.0,
                    })
                    .collect(),
            }),
        );
        let mut buf = Vec::new();
        encode_request(&request, &mut buf).unwrap();
        let capacity = buf.capacity();
        let ptr = buf.as_ptr();
        for _ in 0..16 {
            encode_request(&request, &mut buf).unwrap();
        }
        assert_eq!(buf.capacity(), capacity, "no reallocation at steady state");
        assert_eq!(buf.as_ptr(), ptr, "no reallocation at steady state");
    }
}
