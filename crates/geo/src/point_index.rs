//! Exact range-count oracle over a static point set.

use crate::{Domain, GeoDataset, Point, Rect};

/// A bucketed spatial index answering *exact* rectangle count queries.
///
/// The evaluation harness needs the true answer `A(r)` for thousands of
/// queries over datasets of up to a few million points. A linear scan per
/// query would dominate experiment time, so points are bucketed into a
/// `b × b` grid stored in CSR layout: buckets completely inside the query
/// are resolved from a prefix-sum table in O(1) each (and the whole
/// interior in O(1) total), and only the O(√buckets) boundary buckets are
/// scanned point by point.
///
/// Queries use the same half-open semantics as [`Rect::contains`], so the
/// index is bit-for-bit consistent with [`GeoDataset::count_in`].
#[derive(Debug, Clone)]
pub struct PointIndex {
    domain: Domain,
    /// Buckets per axis.
    buckets: usize,
    /// CSR offsets: `starts[b]..starts[b+1]` indexes `points` for bucket
    /// `b = row * buckets + col`.
    starts: Vec<usize>,
    /// Points reordered by bucket.
    points: Vec<Point>,
    /// Prefix sums of bucket counts: entry `(c, r)` holds the count of all
    /// buckets with column < c and row < r; stride `buckets + 1`.
    prefix: Vec<u64>,
}

impl PointIndex {
    /// Default bucket-grid resolution for a dataset of `n` points:
    /// roughly `√n` buckets per axis, clamped to `[1, 512]`, which keeps
    /// both the bucket directory and the expected boundary-scan cost small.
    pub fn default_resolution(n: usize) -> usize {
        ((n as f64).sqrt() as usize).clamp(1, 512)
    }

    /// Builds the index with the default resolution.
    pub fn build(dataset: &GeoDataset) -> Self {
        Self::with_resolution(dataset, Self::default_resolution(dataset.len()))
    }

    /// Builds the index with `buckets × buckets` buckets.
    pub fn with_resolution(dataset: &GeoDataset, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let domain = *dataset.domain();
        let nb = buckets * buckets;
        // Counting sort into CSR.
        let mut counts = vec![0usize; nb];
        let mut bucket_of = Vec::with_capacity(dataset.len());
        for p in dataset.points() {
            // All dataset points are inside the domain by construction.
            let (c, r) = domain
                .cell_of(p, buckets, buckets)
                .expect("dataset point outside its own domain");
            let b = r * buckets + c;
            counts[b] += 1;
            bucket_of.push(b);
        }
        let mut starts = vec![0usize; nb + 1];
        for b in 0..nb {
            starts[b + 1] = starts[b] + counts[b];
        }
        let mut points = vec![Point::new(0.0, 0.0); dataset.len()];
        let mut cursor = starts.clone();
        for (p, &b) in dataset.points().iter().zip(&bucket_of) {
            points[cursor[b]] = *p;
            cursor[b] += 1;
        }
        // Prefix sums of bucket counts for O(1) interior resolution.
        let stride = buckets + 1;
        let mut prefix = vec![0u64; stride * stride];
        for r in 0..buckets {
            let mut acc = 0u64;
            for c in 0..buckets {
                acc += counts[r * buckets + c] as u64;
                prefix[(r + 1) * stride + (c + 1)] = prefix[r * stride + (c + 1)] + acc;
            }
        }
        PointIndex {
            domain,
            buckets,
            starts,
            points,
            prefix,
        }
    }

    /// The domain of the indexed dataset.
    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    #[inline]
    fn bucket_block_count(&self, c0: usize, r0: usize, c1: usize, r1: usize) -> u64 {
        let stride = self.buckets + 1;
        let p = &self.prefix;
        p[r1 * stride + c1] + p[r0 * stride + c0] - p[r0 * stride + c1] - p[r1 * stride + c0]
    }

    /// Exact number of points in `query` (half-open).
    pub fn count(&self, query: &Rect) -> u64 {
        if query.is_empty() {
            return 0;
        }
        let d = self.domain.rect();
        let b = self.buckets as f64;
        // Touched bucket index range (clamped to the grid).
        let to_u = |x: f64| ((x - d.x0()) / d.width() * b).clamp(0.0, b);
        let to_v = |y: f64| ((y - d.y0()) / d.height() * b).clamp(0.0, b);
        let u0 = to_u(query.x0());
        let u1 = to_u(query.x1());
        let v0 = to_v(query.y0());
        let v1 = to_v(query.y1());
        if u1 <= u0 || v1 <= v0 {
            // Query entirely left/right/above/below the domain. Points on
            // the closed upper domain edge live in the last bucket, which
            // is covered because the clamp keeps u1 = b > u0 only when the
            // query overlaps the domain.
            return 0;
        }
        let c0 = (u0.floor() as usize).min(self.buckets - 1);
        let c1 = ((u1 - f64::EPSILON).floor() as usize).min(self.buckets - 1);
        let r0 = (v0.floor() as usize).min(self.buckets - 1);
        let r1 = ((v1 - f64::EPSILON).floor() as usize).min(self.buckets - 1);

        // Interior buckets: those whose rect is strictly inside the query.
        // A bucket column c is interior iff query.x0 <= edge(c) and
        // edge(c+1) <= query.x1. Compute the interior index window.
        let ic0 = if self.bucket_edge_x(c0) >= query.x0() {
            c0
        } else {
            c0 + 1
        };
        let ic1 = if self.bucket_edge_x(c1 + 1) <= query.x1() {
            c1 + 1
        } else {
            c1
        };
        let ir0 = if self.bucket_edge_y(r0) >= query.y0() {
            r0
        } else {
            r0 + 1
        };
        let ir1 = if self.bucket_edge_y(r1 + 1) <= query.y1() {
            r1 + 1
        } else {
            r1
        };

        let mut total = 0u64;
        if ic0 < ic1 && ir0 < ir1 {
            total += self.bucket_block_count(ic0, ir0, ic1, ir1);
        }
        // Boundary buckets: every touched bucket outside the interior
        // window gets a point-by-point scan.
        for r in r0..=r1 {
            for c in c0..=c1 {
                let interior = c >= ic0 && c < ic1 && r >= ir0 && r < ir1;
                if interior {
                    continue;
                }
                let b = r * self.buckets + c;
                for p in &self.points[self.starts[b]..self.starts[b + 1]] {
                    if query.contains(p) {
                        total += 1;
                    }
                }
            }
        }
        total
    }

    #[inline]
    fn bucket_edge_x(&self, c: usize) -> f64 {
        let d = self.domain.rect();
        d.x0() + d.width() * (c as f64) / (self.buckets as f64)
    }

    #[inline]
    fn bucket_edge_y(&self, r: usize) -> f64 {
        let d = self.domain.rect();
        d.y0() + d.height() * (r as f64) / (self.buckets as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeoDataset;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, seed: u64) -> GeoDataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let domain = Domain::from_corners(-3.0, 2.0, 11.0, 9.0).unwrap();
        let points = (0..n)
            .map(|_| Point::new(rng.random_range(-3.0..11.0), rng.random_range(2.0..9.0)))
            .collect();
        GeoDataset::from_points(points, domain).unwrap()
    }

    #[test]
    fn matches_linear_scan_on_random_queries() {
        let ds = random_dataset(2_000, 42);
        let idx = PointIndex::with_resolution(&ds, 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let x0 = rng.random_range(-5.0..12.0);
            let y0 = rng.random_range(0.0..10.0);
            let w = rng.random_range(0.0..10.0);
            let h = rng.random_range(0.0..6.0);
            let q = Rect::new(x0, y0, x0 + w, y0 + h).unwrap();
            assert_eq!(
                idx.count(&q),
                ds.count_in(&q) as u64,
                "query {q:?} disagrees with linear scan"
            );
        }
    }

    #[test]
    fn various_resolutions_agree() {
        let ds = random_dataset(500, 3);
        let q = Rect::new(0.0, 3.0, 6.5, 7.25).unwrap();
        let expect = ds.count_in(&q) as u64;
        for res in [1, 2, 3, 8, 33, 100] {
            let idx = PointIndex::with_resolution(&ds, res);
            assert_eq!(idx.count(&q), expect, "resolution {res}");
        }
    }

    #[test]
    fn whole_domain_counts_everything() {
        let ds = random_dataset(1234, 9);
        let idx = PointIndex::build(&ds);
        let d = ds.domain().rect();
        // Slightly enlarge so the closed upper edge is included.
        let q = Rect::new(d.x0() - 1.0, d.y0() - 1.0, d.x1() + 1.0, d.y1() + 1.0).unwrap();
        assert_eq!(idx.count(&q), 1234);
    }

    #[test]
    fn disjoint_query_counts_zero() {
        let ds = random_dataset(100, 1);
        let idx = PointIndex::build(&ds);
        let q = Rect::new(100.0, 100.0, 200.0, 200.0).unwrap();
        assert_eq!(idx.count(&q), 0);
        let empty = Rect::new(0.0, 3.0, 0.0, 4.0).unwrap();
        assert_eq!(idx.count(&empty), 0);
    }

    #[test]
    fn boundary_points_on_upper_domain_edge() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let ds = GeoDataset::from_points(vec![Point::new(1.0, 1.0), Point::new(0.5, 0.5)], domain)
            .unwrap();
        let idx = PointIndex::with_resolution(&ds, 4);
        // Query extending past the domain captures the edge point.
        let q = Rect::new(0.9, 0.9, 2.0, 2.0).unwrap();
        assert_eq!(idx.count(&q), 1);
        assert_eq!(ds.count_in(&q) as u64, 1);
        // Query ending exactly at the edge excludes it (half-open).
        let q2 = Rect::new(0.9, 0.9, 1.0, 1.0).unwrap();
        assert_eq!(idx.count(&q2), 0);
    }

    #[test]
    fn empty_dataset() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let ds = GeoDataset::from_points(vec![], domain).unwrap();
        let idx = PointIndex::build(&ds);
        assert!(idx.is_empty());
        let q = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        assert_eq!(idx.count(&q), 0);
    }
}
