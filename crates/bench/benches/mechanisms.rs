//! Microbenchmarks of the substrate: noise sampling, transforms,
//! prefix-sum construction and exact counting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dpgrid_baselines::wavelet;
use dpgrid_bench::{bench_dataset, bench_rng};
use dpgrid_geo::{DenseGrid, PointIndex, Rect};
use dpgrid_mech::{ExponentialMechanism, GeometricMechanism, Laplace};

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms");

    group.bench_function("laplace_sample", |b| {
        let lap = Laplace::new(1.0).unwrap();
        let mut rng = bench_rng();
        b.iter(|| black_box(lap.sample(&mut rng)))
    });

    group.bench_function("geometric_sample", |b| {
        let geo = GeometricMechanism::new(1.0, 1).unwrap();
        let mut rng = bench_rng();
        b.iter(|| black_box(geo.sample_noise(&mut rng)))
    });

    group.bench_function("exponential_select_256", |b| {
        let mech = ExponentialMechanism::new(1.0, 1.0).unwrap();
        let scores: Vec<f64> = (0..256).map(|i| -((i as f64) - 128.0).abs()).collect();
        let mut rng = bench_rng();
        b.iter(|| black_box(mech.select(&scores, &mut rng).unwrap()))
    });

    group.bench_function("haar_forward_2d_256", |b| {
        let base: Vec<f64> = (0..256 * 256).map(|i| (i % 17) as f64).collect();
        b.iter(|| {
            let mut m = base.clone();
            wavelet::forward_2d(&mut m, 256, 256).unwrap();
            black_box(m)
        })
    });

    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let dataset = bench_dataset(100_000);
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    group.bench_function("count_grid_256", |b| {
        b.iter(|| black_box(DenseGrid::count(&dataset, 256, 256).unwrap()))
    });

    group.bench_function("sat_build_256", |b| {
        let grid = DenseGrid::count(&dataset, 256, 256).unwrap();
        b.iter(|| black_box(grid.sat()))
    });

    group.bench_function("point_index_build", |b| {
        b.iter(|| black_box(PointIndex::build(&dataset)))
    });

    group.bench_function("point_index_count", |b| {
        let idx = PointIndex::build(&dataset);
        let q = Rect::new(-110.0, 25.0, -90.0, 40.0).unwrap();
        b.iter(|| black_box(idx.count(black_box(&q))))
    });

    group.finish();
}

criterion_group!(benches, bench_mechanisms, bench_substrate);
criterion_main!(benches);
