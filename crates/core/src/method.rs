//! The canonical registry of synopsis methods.
//!
//! The paper's workflow is always the same — pick a method, spend ε,
//! publish a synopsis, answer rectangle queries — so the workspace
//! exposes method choice as *data*, not as seven unrelated entry
//! points: [`Method`] enumerates every buildable method (UG, AG, the
//! baselines, and the ablation variants) with its distinguishing
//! parameters, and [`Method::build_boxed`] is the single construction
//! path everything routes through — the publishing [`crate::Pipeline`],
//! the evaluation runner, and the examples alike.
//!
//! Labels follow the paper's Table I notation (`U64`, `Khy`, `A16,5`,
//! `H2,3`, `W360`, …), and `None`-valued sizes mean "apply the paper's
//! guideline for this dataset and ε" — resolvable ahead of time with
//! [`Method::resolved`], which is how releases record the
//! guideline-resolved parameters they were actually built with.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_baselines::{
    FlatCount, HierarchicalGrid, HierarchyConfig, KdConfig, KdHybrid, KdStandard, Privelet,
    PriveletConfig,
};
use dpgrid_geo::{GeoDataset, Synopsis};

use crate::{guidelines, AdaptiveGrid, AgConfig, NoiseKind, UgConfig, UniformGrid};
use crate::{Build, Result};

/// A boxed, thread-shareable synopsis — what [`Method::build_boxed`]
/// returns and every registry-driven consumer holds.
pub type BoxedSynopsis = Box<dyn Synopsis + Send + Sync>;

/// A buildable synopsis method with its distinguishing parameters.
///
/// `None` sizes mean "use the paper's guideline for this dataset and ε"
/// — the paper's `U_sugg` / `A_sugg` configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Uniform grid; `m = None` applies Guideline 1.
    Ug {
        /// Fixed grid size, or `None` for Guideline 1.
        m: Option<usize>,
    },
    /// Adaptive grid; `m1 = None` applies the paper's `m₁` formula.
    Ag {
        /// Fixed first-level size, or `None` for the formula.
        m1: Option<usize>,
        /// Budget split (paper default 0.5).
        alpha: f64,
        /// Guideline-2 constant (paper default 5).
        c2: f64,
    },
    /// Privelet wavelets on an `m × m` grid; `None` sizes like UG.
    Privelet {
        /// Grid size, or `None` for Guideline 1.
        m: Option<usize>,
    },
    /// Cormode et al.'s KD-tree with noisy medians at every level.
    KdStandard,
    /// Cormode et al.'s best configuration: quadtree top + KD below.
    KdHybrid,
    /// `H_{b,d}` hierarchy over a `base_m` grid.
    Hierarchy {
        /// Finest grid size.
        base_m: usize,
        /// Branching per axis.
        branching: usize,
        /// Number of levels.
        depth: usize,
    },
    /// Single noisy total count.
    Flat,
    /// UG variant for the ablation experiment: geometric (integer)
    /// noise and/or aspect-ratio-aware cells.
    UgVariant {
        /// Fixed grid size, or `None` for Guideline 1.
        m: Option<usize>,
        /// Use the two-sided geometric mechanism instead of Laplace.
        geometric: bool,
        /// Shape cells to the domain aspect ratio.
        aspect: bool,
    },
    /// AG variant for the ablation experiment: constrained inference
    /// and Guideline-2 adaptivity can be switched off.
    AgVariant {
        /// Fixed first-level size, or `None` for the formula.
        m1: Option<usize>,
        /// Run the two-level constrained inference.
        ci: bool,
        /// Force the same `m₂` everywhere instead of adapting.
        fixed_m2: Option<usize>,
    },
    /// KD-hybrid with an explicit adaptive-stopping factor (0 disables
    /// \[3\]'s data-dependent stopping).
    KdHybridVariant {
        /// Stop-splitting threshold in child-level noise std-devs.
        stop_factor: f64,
    },
}

impl Method {
    /// UG with Guideline 1 (the paper's "UG with suggested size").
    pub fn ug_suggested() -> Self {
        Method::Ug { m: None }
    }

    /// UG with a fixed size (the paper's `U_m`).
    pub fn ug(m: usize) -> Self {
        Method::Ug { m: Some(m) }
    }

    /// AG with all guideline parameters (the paper's "AG with suggested
    /// size").
    pub fn ag_suggested() -> Self {
        Method::Ag {
            m1: None,
            alpha: guidelines::DEFAULT_ALPHA,
            c2: guidelines::DEFAULT_C2,
        }
    }

    /// AG with a fixed first-level size (the paper's `A_{m1,5}`).
    pub fn ag(m1: usize) -> Self {
        Method::Ag {
            m1: Some(m1),
            alpha: guidelines::DEFAULT_ALPHA,
            c2: guidelines::DEFAULT_C2,
        }
    }

    /// AG with explicit `α` and `c₂` (the Figure 4 parameter sweeps).
    pub fn ag_with(m1: usize, alpha: f64, c2: f64) -> Self {
        Method::Ag {
            m1: Some(m1),
            alpha,
            c2,
        }
    }

    /// Privelet at a fixed grid size (the paper's `W_m`).
    pub fn privelet(m: usize) -> Self {
        Method::Privelet { m: Some(m) }
    }

    /// `H_{b,d}` over a `base_m` grid.
    pub fn hierarchy(base_m: usize, branching: usize, depth: usize) -> Self {
        Method::Hierarchy {
            base_m,
            branching,
            depth,
        }
    }

    /// The method's label in the paper's notation, with guideline sizes
    /// resolved against the dataset cardinality `n` and budget `eps`.
    pub fn label(&self, n: usize, eps: f64) -> String {
        match self {
            Method::Ug { m: Some(m) } => format!("U{m}"),
            Method::Ug { m: None } => {
                format!(
                    "U{}*",
                    guidelines::guideline1(n, eps, guidelines::DEFAULT_C)
                )
            }
            Method::Ag {
                m1: Some(m1),
                alpha,
                c2,
            } => {
                if (*alpha - guidelines::DEFAULT_ALPHA).abs() < 1e-12 {
                    format!("A{m1},{c2}")
                } else {
                    format!("A{m1},{c2}(a{alpha})")
                }
            }
            Method::Ag { m1: None, .. } => format!(
                "A{}*",
                guidelines::suggested_m1(n, eps, guidelines::DEFAULT_C)
            ),
            Method::Privelet { m: Some(m) } => format!("W{m}"),
            Method::Privelet { m: None } => {
                format!(
                    "W{}*",
                    guidelines::guideline1(n, eps, guidelines::DEFAULT_C)
                )
            }
            Method::KdStandard => "Kst".to_string(),
            Method::KdHybrid => "Khy".to_string(),
            Method::Hierarchy {
                base_m,
                branching,
                depth,
            } => format!("H{branching},{depth}@{base_m}"),
            Method::Flat => "Flat".to_string(),
            Method::UgVariant {
                m,
                geometric,
                aspect,
            } => {
                let m = m.unwrap_or_else(|| guidelines::guideline1(n, eps, guidelines::DEFAULT_C));
                let mut label = format!("U{m}");
                if *geometric {
                    label.push_str("[geo]");
                }
                if *aspect {
                    label.push_str("[aspect]");
                }
                label
            }
            Method::AgVariant { m1, ci, fixed_m2 } => {
                let m1 =
                    m1.unwrap_or_else(|| guidelines::suggested_m1(n, eps, guidelines::DEFAULT_C));
                let mut label = format!("A{m1}");
                if !ci {
                    label.push_str("[noCI]");
                }
                if let Some(m2) = fixed_m2 {
                    label.push_str(&format!("[m2={m2}]"));
                }
                label
            }
            Method::KdHybridVariant { stop_factor } => {
                format!("Khy[stop={stop_factor}]")
            }
        }
    }

    /// The same method with every guideline-derived hole filled in
    /// against the dataset cardinality `n` and budget `eps`: `Ug { m:
    /// None }` becomes `Ug { m: Some(guideline1(n, ε)) }`, and so on.
    ///
    /// Releases record this alongside the declarative method, so a
    /// consumer can see both "what was asked for" (Guideline 1) and
    /// "what was actually built" (a 316 × 316 grid) without re-running
    /// the guideline math.
    pub fn resolved(&self, n: usize, eps: f64) -> Method {
        let g1 = || guidelines::guideline1(n, eps, guidelines::DEFAULT_C);
        let m1_formula = || guidelines::suggested_m1(n, eps, guidelines::DEFAULT_C);
        match *self {
            Method::Ug { m } => Method::Ug {
                m: Some(m.unwrap_or_else(g1)),
            },
            Method::Ag { m1, alpha, c2 } => Method::Ag {
                m1: Some(m1.unwrap_or_else(m1_formula)),
                alpha,
                c2,
            },
            Method::Privelet { m } => Method::Privelet {
                m: Some(m.unwrap_or_else(g1)),
            },
            Method::UgVariant {
                m,
                geometric,
                aspect,
            } => Method::UgVariant {
                m: Some(m.unwrap_or_else(g1)),
                geometric,
                aspect,
            },
            Method::AgVariant { m1, ci, fixed_m2 } => Method::AgVariant {
                m1: Some(m1.unwrap_or_else(m1_formula)),
                ci,
                fixed_m2,
            },
            other => other,
        }
    }

    /// Builds a synopsis of this method over `dataset` with budget
    /// `eps`: **the** construction path of the workspace.
    ///
    /// Every registry-driven consumer — [`crate::Pipeline::publish`],
    /// the evaluation runner, the examples — funnels through this
    /// method, which dispatches to the per-type [`Build`]
    /// implementations and erases the result behind a boxed
    /// [`Synopsis`].
    pub fn build_boxed(
        &self,
        dataset: &GeoDataset,
        eps: f64,
        rng: &mut impl Rng,
    ) -> Result<BoxedSynopsis> {
        Ok(match self {
            Method::Ug { m } => {
                let cfg = match m {
                    Some(m) => UgConfig::fixed(eps, *m),
                    None => UgConfig::guideline(eps),
                };
                Box::new(UniformGrid::build(dataset, &cfg, rng)?)
            }
            Method::Ag { m1, alpha, c2 } => {
                let mut cfg = AgConfig::guideline(eps).with_alpha(*alpha).with_c2(*c2);
                if let Some(m1) = m1 {
                    cfg = cfg.with_m1(*m1);
                }
                Box::new(AdaptiveGrid::build(dataset, &cfg, rng)?)
            }
            Method::Privelet { m } => {
                let m = m.unwrap_or_else(|| {
                    guidelines::guideline1(dataset.len(), eps, guidelines::DEFAULT_C)
                });
                Box::new(Privelet::build(dataset, &PriveletConfig::new(eps, m), rng)?)
            }
            Method::KdStandard => Box::new(KdStandard::build(dataset, &KdConfig::new(eps), rng)?),
            Method::KdHybrid => Box::new(KdHybrid::build(dataset, &KdConfig::new(eps), rng)?),
            Method::Hierarchy {
                base_m,
                branching,
                depth,
            } => Box::new(HierarchicalGrid::build(
                dataset,
                &HierarchyConfig::new(eps, *base_m, *branching, *depth),
                rng,
            )?),
            Method::Flat => Box::new(<FlatCount as Build>::build(dataset, &eps, rng)?),
            Method::UgVariant {
                m,
                geometric,
                aspect,
            } => {
                let mut cfg = match m {
                    Some(m) => UgConfig::fixed(eps, *m),
                    None => UgConfig::guideline(eps),
                };
                if *geometric {
                    cfg = cfg.with_noise(NoiseKind::Geometric);
                }
                if *aspect {
                    cfg = cfg.with_aspect_aware();
                }
                Box::new(UniformGrid::build(dataset, &cfg, rng)?)
            }
            Method::AgVariant { m1, ci, fixed_m2 } => {
                let mut cfg = AgConfig::guideline(eps);
                if let Some(m1) = m1 {
                    cfg = cfg.with_m1(*m1);
                }
                if !ci {
                    cfg = cfg.without_inference();
                }
                if let Some(m2) = fixed_m2 {
                    cfg = cfg.with_fixed_m2(*m2);
                }
                Box::new(AdaptiveGrid::build(dataset, &cfg, rng)?)
            }
            Method::KdHybridVariant { stop_factor } => {
                let mut cfg = KdConfig::new(eps);
                cfg.stop_factor = *stop_factor;
                Box::new(KdHybrid::build(dataset, &cfg, rng)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::{generators, Domain};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn dataset() -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        generators::uniform(domain, 2_000, &mut rng(1))
    }

    #[test]
    fn labels_follow_paper_notation() {
        assert_eq!(Method::ug(64).label(0, 1.0), "U64");
        assert_eq!(Method::ug_suggested().label(1_000_000, 1.0), "U316*");
        assert_eq!(Method::ag(16).label(0, 1.0), "A16,5");
        assert_eq!(Method::ag_suggested().label(1_000_000, 1.0), "A79*");
        assert_eq!(Method::privelet(360).label(0, 1.0), "W360");
        assert_eq!(Method::KdStandard.label(0, 1.0), "Kst");
        assert_eq!(Method::KdHybrid.label(0, 1.0), "Khy");
        assert_eq!(Method::hierarchy(360, 2, 3).label(0, 1.0), "H2,3@360");
        assert_eq!(Method::Flat.label(0, 1.0), "Flat");
        assert_eq!(
            Method::ag_with(32, 0.25, 10.0).label(0, 1.0),
            "A32,10(a0.25)"
        );
    }

    #[test]
    fn every_method_builds_and_answers() {
        let ds = dataset();
        let methods = [
            Method::ug(8),
            Method::ug_suggested(),
            Method::ag(4),
            Method::ag_suggested(),
            Method::privelet(8),
            Method::KdStandard,
            Method::KdHybrid,
            Method::hierarchy(8, 2, 2),
            Method::Flat,
        ];
        let q = dpgrid_geo::Rect::new(1.0, 1.0, 6.0, 6.0).unwrap();
        let truth = ds.count_in(&q) as f64;
        for m in methods {
            let syn = m.build_boxed(&ds, 1.0, &mut rng(7)).unwrap();
            let ans = syn.answer(&q);
            assert!(ans.is_finite(), "{m:?}");
            assert!(
                (ans - truth).abs() < 2_000.0,
                "{m:?}: answer {ans} truth {truth}"
            );
        }
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let ds = dataset();
        let q = dpgrid_geo::Rect::new(0.0, 0.0, 5.0, 5.0).unwrap();
        for m in [Method::ug(8), Method::ag(4), Method::KdHybrid] {
            let a = m.build_boxed(&ds, 1.0, &mut rng(9)).unwrap().answer(&q);
            let b = m.build_boxed(&ds, 1.0, &mut rng(9)).unwrap().answer(&q);
            assert_eq!(a, b, "{m:?}");
        }
    }

    #[test]
    fn resolved_fills_guideline_holes() {
        let n = 1_000_000;
        let g1 = guidelines::guideline1(n, 1.0, guidelines::DEFAULT_C);
        let m1 = guidelines::suggested_m1(n, 1.0, guidelines::DEFAULT_C);
        assert_eq!(
            Method::ug_suggested().resolved(n, 1.0),
            Method::Ug { m: Some(g1) }
        );
        assert_eq!(
            Method::ag_suggested().resolved(n, 1.0),
            Method::Ag {
                m1: Some(m1),
                alpha: guidelines::DEFAULT_ALPHA,
                c2: guidelines::DEFAULT_C2,
            }
        );
        // Already-fixed parameters and parameterless methods are
        // untouched.
        assert_eq!(Method::ug(64).resolved(n, 1.0), Method::ug(64));
        assert_eq!(Method::KdHybrid.resolved(n, 1.0), Method::KdHybrid);
    }

    #[test]
    fn method_serde_roundtrip() {
        for m in [
            Method::ug_suggested(),
            Method::ag(16),
            Method::KdHybrid,
            Method::hierarchy(16, 2, 2),
            Method::UgVariant {
                m: None,
                geometric: true,
                aspect: false,
            },
        ] {
            let json = serde_json::to_string(&m).unwrap();
            let back: Method = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m, "{json}");
        }
    }
}
