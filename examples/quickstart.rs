//! Quickstart: publish a differentially private release of a location
//! dataset through the `Pipeline` and answer range queries from it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dpgrid::prelude::*;

fn main() {
    // 1. A location dataset. In production this is your private data;
    //    here we generate a landmark-shaped synthetic dataset.
    let dataset = PaperDataset::Landmark
        .generate_n(42, 100_000)
        .expect("generate dataset");
    println!(
        "dataset: {} points on a {:.0} x {:.0} domain",
        dataset.len(),
        dataset.domain().width(),
        dataset.domain().height()
    );

    // 2. Publish releases under ε = 1 differential privacy. One fluent
    //    chain per method: pick it from the registry, spend the budget,
    //    get a portable `Release` back. (The seed makes this example
    //    reproducible; unseeded pipelines draw fresh noise each run.)
    let ug = Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ug_suggested())
        .seed(7)
        .publish()
        .expect("publish UG");
    let ag = Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ag_suggested())
        .seed(8)
        .publish()
        .expect("publish AG");
    println!(
        "released: {} with {} cells, {} with {} cells",
        ug.method(),
        ug.cell_count(),
        ag.method(),
        ag.cell_count()
    );

    // 3. Answer count queries from the private releases only. The
    //    first answer compiles each release into its query surface;
    //    every answer after that is O(log cells).
    let queries = [
        (
            "east coast strip",
            Rect::new(-80.0, 30.0, -70.0, 45.0).unwrap(),
        ),
        (
            "mid-west block",
            Rect::new(-105.0, 35.0, -95.0, 45.0).unwrap(),
        ),
        (
            "small city window",
            Rect::new(-88.0, 41.0, -87.0, 42.0).unwrap(),
        ),
    ];
    println!(
        "\n{:<20} {:>10} {:>12} {:>12}",
        "query", "truth", "UG", "AG"
    );
    for (name, q) in &queries {
        let truth = dataset.count_in(q) as f64;
        println!(
            "{:<20} {:>10} {:>12.1} {:>12.1}",
            name,
            truth,
            ug.answer(q),
            ag.answer(q)
        );
    }

    // 4. The release is safe to share: every value inside is ε-DP, so
    //    post-processing (storage, publication, synthetic data
    //    generation) incurs no further privacy cost — and the typed
    //    metadata tells the consumer exactly how it was produced.
    let mut json = Vec::new();
    ag.write_json(&mut json).expect("serialize release");
    println!(
        "\nAG release: {} bytes of JSON; metadata records method {:?}, resolved {:?}",
        json.len(),
        ag.metadata().method,
        ag.metadata().resolved,
    );
}
