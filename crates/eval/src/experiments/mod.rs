//! One module per paper artifact, each regenerating its table or figure.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`table2`] | Table II — suggested vs experimentally best grid sizes |
//! | [`fig1`] | Figure 1 — dataset renderings |
//! | [`fig2`] | Figure 2 — KD-standard / KD-hybrid vs UG size sweep |
//! | [`fig3`] | Figure 3 — hierarchies and wavelets over a fixed grid |
//! | [`fig4`] | Figure 4 — AG parameter sensitivity (m₁, α, c₂) |
//! | [`fig5`] | Figure 5 — final comparison, relative error |
//! | [`fig6`] | Figure 6 — final comparison, absolute error |
//! | [`dim`]  | §IV-C — border-fraction analysis + 1-D/2-D hierarchy contrast |
//! | [`ablate`] | extension — ablations of CI, Guideline-2 adaptivity, noise source, cell shape, KD stopping |
//!
//! Every experiment takes an [`ExpContext`] (output directory, dataset
//! scale, trial count, seed), writes CSV series under
//! `out_dir/<experiment>/` and returns a markdown summary.

pub mod ablate;
pub mod dim;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table2;

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

use dpgrid_geo::generators::PaperDataset;
use dpgrid_geo::{GeoDataset, PointIndex};

use crate::method::Method;
use crate::runner::{evaluate, EvalConfig, MethodEval};
use crate::truth::TruthTable;
use crate::workload::{QueryWorkload, WorkloadSpec};
use crate::{report, Result};

/// Shared configuration for experiment runs.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Directory all CSV/markdown output lands in.
    pub out_dir: PathBuf,
    /// Dataset scale divisor: `1` = paper scale (road 1.6 M points),
    /// `16` = a fast smoke run.
    pub scale: usize,
    /// Independent noise trials per method.
    pub trials: usize,
    /// Queries per size class (paper: 200).
    pub queries_per_size: usize,
    /// Master seed.
    pub seed: u64,
    /// Privacy budgets to evaluate (paper: 0.1 and 1.0).
    pub epsilons: Vec<f64>,
}

impl ExpContext {
    /// Paper-faithful settings writing into `out_dir`.
    pub fn paper(out_dir: impl Into<PathBuf>) -> Self {
        ExpContext {
            out_dir: out_dir.into(),
            scale: 1,
            trials: 3,
            queries_per_size: 200,
            seed: 20130408, // ICDE 2013 week, why not
            epsilons: vec![0.1, 1.0],
        }
    }

    /// Reduced settings for smoke tests and CI.
    pub fn smoke(out_dir: impl Into<PathBuf>) -> Self {
        ExpContext {
            out_dir: out_dir.into(),
            scale: 64,
            trials: 1,
            queries_per_size: 40,
            seed: 7,
            epsilons: vec![1.0],
        }
    }

    /// Number of points generated for `dataset` at this scale.
    pub fn n_for(&self, dataset: PaperDataset) -> usize {
        (dataset.paper_n() / self.scale.max(1)).max(1)
    }

    /// Output subdirectory for one experiment.
    pub fn dir(&self, experiment: &str) -> PathBuf {
        self.out_dir.join(experiment)
    }
}

/// A prepared dataset: points, exact-count index, workload and truth.
pub struct DataBundle {
    /// Which paper dataset this is.
    pub which: PaperDataset,
    /// The generated points.
    pub dataset: GeoDataset,
    /// The generated workload (6 sizes × queries_per_size).
    pub workload: QueryWorkload,
    /// Exact answers for the workload.
    pub truth: TruthTable,
}

impl DataBundle {
    /// Generates the dataset, workload and ground truth for one paper
    /// dataset under the context's scale and seed.
    pub fn prepare(which: PaperDataset, ctx: &ExpContext) -> Result<Self> {
        let dataset = which.generate_n(ctx.seed, ctx.n_for(which))?;
        let spec = WorkloadSpec::paper(which).with_queries_per_size(ctx.queries_per_size);
        let mut wl_rng = StdRng::seed_from_u64(ctx.seed ^ 0x005E_ED0F);
        let workload = QueryWorkload::generate(dataset.domain(), &spec, &mut wl_rng)?;
        let index = PointIndex::build(&dataset);
        let truth = TruthTable::compute(&index, &workload);
        Ok(DataBundle {
            which,
            dataset,
            workload,
            truth,
        })
    }

    /// Runs a method panel at one ε and writes the three standard CSVs
    /// (`<stem>_by_size.csv`, `<stem>_rel.csv`, `<stem>_abs.csv`) into
    /// `dir`; returns the evaluations.
    pub fn run_panel(
        &self,
        dir: &Path,
        stem: &str,
        methods: &[Method],
        epsilon: f64,
        ctx: &ExpContext,
    ) -> Result<Vec<MethodEval>> {
        // Derive a panel-specific seed from the stem so different panels
        // draw independent noise while staying reproducible.
        let stem_hash: u64 = stem.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let cfg = EvalConfig {
            epsilon,
            trials: ctx.trials,
            seed: ctx.seed ^ stem_hash ^ epsilon.to_bits(),
        };
        let evals = evaluate(&self.dataset, &self.workload, &self.truth, methods, &cfg)?;
        let title = format!("{} (ε = {epsilon})", self.which.name());
        report::by_size_table(&title, &evals)
            .write_csv(&dir.join(format!("{stem}_by_size.csv")))?;
        report::profile_table(&title, &evals).write_csv(&dir.join(format!("{stem}_rel.csv")))?;
        report::abs_profile_table(&title, &evals)
            .write_csv(&dir.join(format!("{stem}_abs.csv")))?;
        Ok(evals)
    }
}

/// Geometric ladder of grid sizes around a suggested value, used by the
/// sweep experiments (the paper's panels list a comparable ladder).
pub fn size_ladder(suggested: usize) -> Vec<usize> {
    let s = suggested.max(2) as f64;
    let mut out: Vec<usize> = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|f| ((s * f).round() as usize).max(2))
        .collect();
    out.dedup();
    out
}

/// Picks the evaluation with the lowest pooled mean relative error.
pub fn best_by_mean(evals: &[MethodEval]) -> usize {
    let mut best = 0;
    for (i, e) in evals.iter().enumerate() {
        if e.rel_profile.mean < evals[best].rel_profile.mean {
            best = i;
        }
    }
    best
}

/// Runs every experiment and writes `SUMMARY.md` in the output root.
pub fn run_all(ctx: &ExpContext) -> Result<String> {
    let mut md = String::new();
    md.push_str(&format!(
        "# dpgrid reproduction run\n\nscale = 1/{}, trials = {}, queries/size = {}, seed = {}\n\n",
        ctx.scale, ctx.trials, ctx.queries_per_size, ctx.seed
    ));
    md.push_str(&fig1::run(ctx)?);
    md.push_str(&dim::run(ctx)?);
    md.push_str(&table2::run(ctx)?);
    md.push_str(&fig2::run(ctx)?);
    md.push_str(&fig3::run(ctx)?);
    md.push_str(&fig4::run(ctx)?);
    md.push_str(&fig5::run(ctx)?);
    md.push_str(&fig6::run(ctx)?);
    md.push_str(&ablate::run(ctx)?);
    std::fs::create_dir_all(&ctx.out_dir)
        .map_err(|e| crate::EvalError::Geo(dpgrid_geo::GeoError::Io(e.to_string())))?;
    std::fs::write(ctx.out_dir.join("SUMMARY.md"), &md)
        .map_err(|e| crate::EvalError::Geo(dpgrid_geo::GeoError::Io(e.to_string())))?;
    Ok(md)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_scaling() {
        let ctx = ExpContext::smoke("/tmp/x");
        assert_eq!(ctx.n_for(PaperDataset::Road), 1_600_000 / 64);
        let paper = ExpContext::paper("/tmp/y");
        assert_eq!(paper.n_for(PaperDataset::Storage), 9_000);
    }

    #[test]
    fn ladder_is_sorted_and_contains_suggested() {
        let l = size_ladder(100);
        assert!(l.contains(&100));
        assert!(l.windows(2).all(|w| w[0] <= w[1]));
        assert!(l[0] >= 2);
        // Tiny suggested values stay valid.
        let tiny = size_ladder(1);
        assert!(tiny.iter().all(|&m| m >= 2));
    }

    #[test]
    fn bundle_prepare_smoke() {
        let ctx = ExpContext::smoke(std::env::temp_dir().join("dpgrid_bundle_test"));
        let b = DataBundle::prepare(PaperDataset::Storage, &ctx).unwrap();
        assert_eq!(b.dataset.len(), 9_000 / 64);
        assert_eq!(b.workload.num_sizes(), 6);
        assert_eq!(b.truth.n(), b.dataset.len());
    }
}
