//! Releases must survive serialization: a synopsis is meant to be
//! published, stored and reloaded.

use dpgrid::baselines::{
    HierarchicalGrid, HierarchyConfig, KdConfig, KdHybrid, KdTreeSynopsis, Privelet, PriveletConfig,
};
use dpgrid::prelude::*;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn dataset() -> GeoDataset {
    PaperDataset::Storage.generate_n(8, 2_000).unwrap()
}

fn queries(ds: &GeoDataset) -> Vec<Rect> {
    let d = ds.domain().rect();
    vec![
        *d,
        Rect::new(
            d.x0() + 1.0,
            d.y0() + 1.0,
            d.x0() + d.width() / 2.0,
            d.y0() + d.height() / 3.0,
        )
        .unwrap(),
    ]
}

#[test]
fn uniform_grid_roundtrip() {
    let ds = dataset();
    let ug = UniformGrid::build(&ds, &UgConfig::guideline(1.0), &mut rng(1)).unwrap();
    let json = serde_json::to_string(&ug).unwrap();
    let back: UniformGrid = serde_json::from_str(&json).unwrap();
    for q in queries(&ds) {
        assert_eq!(ug.answer(&q), back.answer(&q));
    }
    assert_eq!(back.epsilon(), 1.0);
}

#[test]
fn adaptive_grid_roundtrip() {
    let ds = dataset();
    let ag = AdaptiveGrid::build(&ds, &AgConfig::guideline(1.0), &mut rng(2)).unwrap();
    let json = serde_json::to_string(&ag).unwrap();
    let back: AdaptiveGrid = serde_json::from_str(&json).unwrap();
    for q in queries(&ds) {
        assert_eq!(ag.answer(&q), back.answer(&q));
    }
    assert_eq!(back.m1(), ag.m1());
}

#[test]
fn privelet_roundtrip() {
    let ds = dataset();
    let w = Privelet::build(&ds, &PriveletConfig::new(1.0, 16), &mut rng(3)).unwrap();
    let json = serde_json::to_string(&w).unwrap();
    let back: Privelet = serde_json::from_str(&json).unwrap();
    for q in queries(&ds) {
        assert_eq!(w.answer(&q), back.answer(&q));
    }
}

#[test]
fn hierarchy_roundtrip() {
    let ds = dataset();
    let h =
        HierarchicalGrid::build(&ds, &HierarchyConfig::new(1.0, 16, 2, 3), &mut rng(4)).unwrap();
    let json = serde_json::to_string(&h).unwrap();
    let back: HierarchicalGrid = serde_json::from_str(&json).unwrap();
    for q in queries(&ds) {
        assert_eq!(h.answer(&q), back.answer(&q));
    }
}

#[test]
fn kd_tree_roundtrip() {
    let ds = dataset();
    let mut cfg = KdConfig::new(1.0);
    cfg.base_resolution = 32;
    cfg.height = Some(6);
    let t = KdHybrid::build(&ds, &cfg, &mut rng(5)).unwrap();
    let json = serde_json::to_string(&t).unwrap();
    let back: KdTreeSynopsis = serde_json::from_str(&json).unwrap();
    for q in queries(&ds) {
        assert_eq!(t.answer(&q), back.answer(&q));
    }
    assert_eq!(back.node_count(), t.node_count());
}

#[test]
fn dataset_csv_roundtrip_through_disk() {
    let ds = dataset();
    let path = std::env::temp_dir().join("dpgrid_ser_test.csv");
    ds.save_csv(&path).unwrap();
    let back = GeoDataset::load_csv(&path).unwrap();
    assert_eq!(back.len(), ds.len());
    assert_eq!(back.domain(), ds.domain());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn released_cells_serialize_compactly() {
    // The (rect, count) cell export — the minimal publishable format.
    let ds = dataset();
    let ug = UniformGrid::build(&ds, &UgConfig::fixed(1.0, 8), &mut rng(6)).unwrap();
    let cells = ug.cells();
    let json = serde_json::to_string(&cells).unwrap();
    let back: Vec<(Rect, f64)> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), 64);
    assert_eq!(back, cells);
}

#[test]
fn pr1_era_release_fixture_loads_and_answers_identically() {
    // A checked-in release in the PR-1 wire format: a free-form string
    // under the top-level "method" key, no typed metadata. It must keep
    // loading forever, and must answer exactly what its cells say.
    let json = include_str!("fixtures/pr1_release.json");
    let rel = Release::read_json(json.as_bytes()).unwrap();

    // The legacy string survives verbatim; no typed method is invented.
    assert_eq!(rel.method(), "AG(eps=0.5, m1=2)");
    assert_eq!(rel.method_kind(), None);
    assert_eq!(rel.metadata().seed, None);
    assert_eq!(rel.epsilon(), 0.5);
    assert_eq!(rel.metadata().epsilon, 0.5);
    assert_eq!(rel.cell_count(), 4);

    // Answers equal the linear-scan semantics of the fixture's cells,
    // through both the compiled surface and the reference path.
    let cells = [
        (Rect::new(0.0, 0.0, 2.0, 1.0).unwrap(), 12.5),
        (Rect::new(2.0, 0.0, 4.0, 1.0).unwrap(), -1.25),
        (Rect::new(0.0, 1.0, 2.0, 2.0).unwrap(), 7.75),
        (Rect::new(2.0, 1.0, 4.0, 2.0).unwrap(), 30.0),
    ];
    let queries = [
        Rect::new(0.0, 0.0, 4.0, 2.0).unwrap(),
        Rect::new(0.5, 0.25, 3.0, 1.75).unwrap(),
        Rect::new(1.9, 0.9, 2.1, 1.1).unwrap(),
        Rect::new(-1.0, -1.0, 9.0, 9.0).unwrap(),
    ];
    for q in &queries {
        let expect: f64 = cells.iter().map(|(r, v)| v * r.overlap_fraction(q)).sum();
        assert!(
            (rel.answer(q) - expect).abs() < 1e-12,
            "query {q:?}: {} vs {expect}",
            rel.answer(q)
        );
        assert!((rel.answer_linear_scan(q) - expect).abs() < 1e-12);
    }

    // Round-trip: re-serialising (now with a metadata object) and
    // re-loading must preserve the label and every answer.
    let mut buf = Vec::new();
    rel.write_json(&mut buf).unwrap();
    let back = Release::read_json(&buf[..]).unwrap();
    assert_eq!(back.method(), rel.method());
    for q in &queries {
        assert_eq!(back.answer(q), rel.answer(q));
    }
}

#[test]
fn pipeline_release_roundtrips_with_typed_metadata() {
    let ds = dataset();
    let rel = Pipeline::new(&ds)
        .epsilon(1.0)
        .method(Method::ag(4))
        .seed(21)
        .publish()
        .unwrap();
    let mut buf = Vec::new();
    rel.write_json(&mut buf).unwrap();
    let back = Release::read_json(&buf[..]).unwrap();
    assert_eq!(back.metadata(), rel.metadata());
    assert_eq!(back.method_kind(), Some(&Method::ag(4)));
    for q in queries(&ds) {
        assert_eq!(back.answer(&q), rel.answer(&q));
    }
}
