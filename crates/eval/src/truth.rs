//! Ground-truth answers for workloads.

use dpgrid_geo::{GeoDataset, PointIndex};

use crate::workload::QueryWorkload;

/// Exact answers for every query in a workload, shaped
/// `answers[size_index][query_index]`.
#[derive(Debug, Clone)]
pub struct TruthTable {
    answers: Vec<Vec<f64>>,
    /// Dataset cardinality, for the ρ floor of the relative error.
    n: usize,
}

impl TruthTable {
    /// Computes exact answers with a [`PointIndex`].
    pub fn compute(index: &PointIndex, workload: &QueryWorkload) -> Self {
        let answers = (0..workload.num_sizes())
            .map(|i| {
                workload
                    .queries(i)
                    .iter()
                    .map(|q| index.count(q) as f64)
                    .collect()
            })
            .collect();
        TruthTable {
            answers,
            n: index.len(),
        }
    }

    /// Computes exact answers by scanning the dataset (slow path; used by
    /// tests to validate the index-based fast path).
    pub fn compute_scan(dataset: &GeoDataset, workload: &QueryWorkload) -> Self {
        let answers = (0..workload.num_sizes())
            .map(|i| {
                workload
                    .queries(i)
                    .iter()
                    .map(|q| dataset.count_in(q) as f64)
                    .collect()
            })
            .collect();
        TruthTable {
            answers,
            n: dataset.len(),
        }
    }

    /// True answer of query `j` in size class `i`.
    #[inline]
    pub fn answer(&self, i: usize, j: usize) -> f64 {
        self.answers[i][j]
    }

    /// All true answers of size class `i`.
    pub fn answers(&self, i: usize) -> &[f64] {
        &self.answers[i]
    }

    /// Dataset cardinality.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The paper's ρ floor: `0.001·N`.
    pub fn rho(&self) -> f64 {
        crate::metrics::rho_for(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use dpgrid_geo::{generators, Domain};
    use rand::SeedableRng;

    #[test]
    fn index_and_scan_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let domain = Domain::from_corners(0.0, 0.0, 20.0, 10.0).unwrap();
        let ds = generators::uniform(domain, 3_000, &mut rng);
        let spec = WorkloadSpec {
            q1_width: 0.5,
            q1_height: 0.25,
            num_sizes: 5,
            queries_per_size: 40,
        };
        let w = QueryWorkload::generate(&domain, &spec, &mut rng).unwrap();
        let idx = PointIndex::build(&ds);
        let fast = TruthTable::compute(&idx, &w);
        let slow = TruthTable::compute_scan(&ds, &w);
        for i in 0..w.num_sizes() {
            for j in 0..w.queries(i).len() {
                assert_eq!(fast.answer(i, j), slow.answer(i, j), "({i},{j})");
            }
        }
        assert_eq!(fast.n(), 3_000);
        assert_eq!(fast.rho(), 3.0);
    }
}
