//! Error type for the core synopsis crate.

use std::fmt;

use dpgrid_geo::GeoError;
use dpgrid_mech::MechError;

/// Errors produced when building or querying grid synopses.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// Underlying geometry/histogram failure.
    Geo(GeoError),
    /// Underlying privacy-mechanism failure.
    Mech(MechError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Geo(e) => write!(f, "geometry error: {e}"),
            CoreError::Mech(e) => write!(f, "mechanism error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Geo(e) => Some(e),
            CoreError::Mech(e) => Some(e),
            CoreError::InvalidConfig(_) => None,
        }
    }
}

impl From<GeoError> for CoreError {
    fn from(e: GeoError) -> Self {
        CoreError::Geo(e)
    }
}

impl From<MechError> for CoreError {
    fn from(e: MechError) -> Self {
        CoreError::Mech(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors() {
        let g: CoreError = GeoError::EmptyRect.into();
        assert!(matches!(g, CoreError::Geo(_)));
        let m: CoreError = MechError::InvalidEpsilon(-1.0).into();
        assert!(matches!(m, CoreError::Mech(_)));
        assert!(m.to_string().contains("epsilon"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e: CoreError = GeoError::EmptyRect.into();
        assert!(e.source().is_some());
        assert!(CoreError::InvalidConfig("x".into()).source().is_none());
    }
}
