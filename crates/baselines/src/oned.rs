//! One-dimensional histograms — the §IV-C control experiment.
//!
//! The paper's dimensionality analysis rests on a contrast: binary
//! hierarchies with constrained inference are known to **win clearly in
//! one dimension** (Hay et al. \[4\]) yet bring almost nothing in two.
//! This module supplies the 1-D side of that contrast — a flat noisy
//! histogram and a `b`-ary hierarchical histogram over the same bins —
//! so the `dim` experiment can measure both sides empirically.
//!
//! Range queries are continuous intervals in bin units with fractional
//! ends, mirroring the 2-D uniformity assumption.

use rand::Rng;

use dpgrid_geo::GeoDataset;
use dpgrid_mech::{uniform_allocation, LaplaceMechanism};

use crate::inference::CiTree;
use crate::{BaselineError, Result};

/// Projects a 2-D dataset onto the x axis as a histogram of `bins`
/// equi-width bins over the domain's x extent.
pub fn project_x(dataset: &GeoDataset, bins: usize) -> Vec<f64> {
    let d = dataset.domain().rect();
    let mut counts = vec![0.0f64; bins.max(1)];
    for p in dataset.points() {
        let u = (p.x - d.x0()) / d.width() * bins as f64;
        let i = (u.max(0.0) as usize).min(bins - 1);
        counts[i] += 1.0;
    }
    counts
}

/// A released 1-D histogram: noisy per-bin counts (possibly refined by
/// hierarchical constrained inference) plus prefix sums for O(1)
/// interval queries.
#[derive(Debug, Clone)]
pub struct Histogram1D {
    bins: Vec<f64>,
    prefix: Vec<f64>,
    epsilon: f64,
}

impl Histogram1D {
    /// The flat method: every bin gets `Lap(1/ε)` noise (parallel
    /// composition — one level, full budget). The 1-D analogue of UG.
    pub fn flat(counts: &[f64], epsilon: f64, rng: &mut impl Rng) -> Result<Self> {
        if counts.is_empty() {
            return Err(BaselineError::InvalidConfig(
                "histogram needs at least one bin".into(),
            ));
        }
        let mech = LaplaceMechanism::for_count(epsilon)?;
        let bins: Vec<f64> = counts.iter().map(|&c| mech.randomize(c, rng)).collect();
        Ok(Histogram1D::from_bins(bins, epsilon))
    }

    /// The hierarchical method of Hay et al. \[4\]: a `branching`-ary tree
    /// over the bins (zero-padded to a power of `branching`), uniform
    /// budget per level, noisy counts at every node, constrained
    /// inference, answers from the consistent leaves.
    pub fn hierarchical(
        counts: &[f64],
        epsilon: f64,
        branching: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if counts.is_empty() {
            return Err(BaselineError::InvalidConfig(
                "histogram needs at least one bin".into(),
            ));
        }
        if branching < 2 {
            return Err(BaselineError::InvalidConfig("branching must be ≥ 2".into()));
        }
        // Pad to a power of the branching factor.
        let mut n = 1usize;
        let mut depth = 0usize;
        while n < counts.len() {
            n *= branching;
            depth += 1;
        }
        let mut padded = counts.to_vec();
        padded.resize(n, 0.0);

        // True sums per level, root (level 0) .. leaves (level `depth`).
        let mut levels: Vec<Vec<f64>> = vec![padded];
        for _ in 0..depth {
            let finer = &levels[0];
            let coarser: Vec<f64> = finer
                .chunks(branching)
                .map(|chunk| chunk.iter().sum())
                .collect();
            levels.insert(0, coarser);
        }

        // Noise each level with its share of ε, then run CI.
        let epsilons = uniform_allocation(epsilon, depth + 1)?;
        let mut tree = CiTree::with_capacity(levels.iter().map(|l| l.len()).sum());
        let mut ids: Vec<Vec<usize>> = Vec::with_capacity(levels.len());
        for (level, &eps) in levels.iter().zip(&epsilons) {
            let mech = LaplaceMechanism::for_count(eps)?;
            let var = 2.0 / (eps * eps);
            let mut level_ids = Vec::with_capacity(level.len());
            for &truth in level {
                level_ids.push(tree.add_node(mech.randomize(truth, rng), var)?);
            }
            ids.push(level_ids);
        }
        for li in 0..ids.len() - 1 {
            for (pi, &parent) in ids[li].iter().enumerate() {
                let children: Vec<usize> = (0..branching)
                    .map(|k| ids[li + 1][pi * branching + k])
                    .collect();
                tree.set_children(parent, children)?;
            }
        }
        let roots: Vec<usize> = ids[0].clone();
        let consistent = tree.run(&roots)?;
        let mut bins: Vec<f64> = ids
            .last()
            .expect("at least one level")
            .iter()
            .map(|&id| consistent[id])
            .collect();
        bins.truncate(counts.len());
        Ok(Histogram1D::from_bins(bins, epsilon))
    }

    fn from_bins(bins: Vec<f64>, epsilon: f64) -> Self {
        let mut prefix = Vec::with_capacity(bins.len() + 1);
        prefix.push(0.0);
        for &b in &bins {
            prefix.push(prefix.last().unwrap() + b);
        }
        Histogram1D {
            bins,
            prefix,
            epsilon,
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether the histogram has no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// The released bin values.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// The privacy budget consumed.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Estimated count on the continuous interval `[a, b]` in bin units
    /// (clamped to `[0, len]`), with fractional end bins under the
    /// uniformity assumption.
    pub fn answer(&self, a: f64, b: f64) -> f64 {
        let n = self.bins.len() as f64;
        let a = a.clamp(0.0, n);
        let b = b.clamp(0.0, n);
        if b <= a {
            return 0.0;
        }
        let exact = |x: f64| -> f64 {
            let i = x.floor() as usize;
            let frac = x - i as f64;
            let base = self.prefix[i.min(self.bins.len())];
            if i < self.bins.len() {
                base + self.bins[i] * frac
            } else {
                base
            }
        };
        exact(b) - exact(a)
    }

    /// Sum of all bins.
    pub fn total(&self) -> f64 {
        *self.prefix.last().expect("prefix non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn validates_inputs() {
        assert!(Histogram1D::flat(&[], 1.0, &mut rng(0)).is_err());
        assert!(Histogram1D::hierarchical(&[1.0], 1.0, 1, &mut rng(0)).is_err());
        assert!(Histogram1D::flat(&[1.0], 0.0, &mut rng(0)).is_err());
    }

    #[test]
    fn flat_huge_epsilon_exact() {
        let counts = [3.0, 5.0, 7.0, 9.0];
        let h = Histogram1D::flat(&counts, 1e9, &mut rng(1)).unwrap();
        assert!((h.answer(0.0, 4.0) - 24.0).abs() < 1e-3);
        assert!((h.answer(1.0, 3.0) - 12.0).abs() < 1e-3);
        // Fractional ends: half of bin 0 plus half of bin 1.
        assert!((h.answer(0.5, 1.5) - (1.5 + 2.5)).abs() < 1e-3);
    }

    #[test]
    fn hierarchical_huge_epsilon_exact() {
        let counts: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let h = Histogram1D::hierarchical(&counts, 1e9, 2, &mut rng(2)).unwrap();
        for (a, b) in [(0.0, 16.0), (3.0, 11.0), (0.25, 0.75)] {
            let truth: f64 = {
                let exact = |x: f64| -> f64 {
                    let i = x.floor() as usize;
                    let mut s: f64 = counts[..i.min(16)].iter().sum();
                    if i < 16 {
                        s += counts[i] * (x - i as f64);
                    }
                    s
                };
                exact(b) - exact(a)
            };
            assert!(
                (h.answer(a, b) - truth).abs() < 1e-3,
                "({a},{b}): {} vs {truth}",
                h.answer(a, b)
            );
        }
    }

    #[test]
    fn hierarchical_pads_non_powers() {
        let counts = vec![1.0; 10]; // pads to 16
        let h = Histogram1D::hierarchical(&counts, 1e9, 2, &mut rng(3)).unwrap();
        assert_eq!(h.len(), 10);
        assert!((h.total() - 10.0).abs() < 1e-3);
    }

    #[test]
    fn hierarchy_beats_flat_on_large_ranges() {
        // The Hay et al. result this module exists to demonstrate: for
        // large 1-D ranges the hierarchy's noise is much smaller.
        let counts = vec![0.0f64; 1024];
        let eps = 1.0;
        let trials = 40;
        let mut r = rng(4);
        let (mut err_flat, mut err_hier) = (0.0, 0.0);
        for _ in 0..trials {
            let f = Histogram1D::flat(&counts, eps, &mut r).unwrap();
            let h = Histogram1D::hierarchical(&counts, eps, 2, &mut r).unwrap();
            // A half-domain range: truth is 0, answers are pure noise.
            err_flat += f.answer(0.0, 512.0).abs();
            err_hier += h.answer(0.0, 512.0).abs();
        }
        assert!(
            err_hier < err_flat * 0.5,
            "hierarchy {err_hier} not clearly below flat {err_flat}"
        );
    }

    #[test]
    fn projection_counts_points() {
        use dpgrid_geo::{Domain, GeoDataset, Point};
        let domain = Domain::from_corners(0.0, 0.0, 4.0, 1.0).unwrap();
        let ds = GeoDataset::from_points(
            vec![
                Point::new(0.5, 0.5),
                Point::new(1.5, 0.2),
                Point::new(1.7, 0.9),
                Point::new(4.0, 1.0), // closed upper edge -> last bin
            ],
            domain,
        )
        .unwrap();
        let bins = project_x(&ds, 4);
        assert_eq!(bins, vec![1.0, 2.0, 0.0, 1.0]);
    }

    #[test]
    fn answer_clamps_and_degenerates() {
        let h = Histogram1D::flat(&[2.0, 2.0], 1e9, &mut rng(5)).unwrap();
        assert_eq!(h.answer(1.0, 1.0), 0.0);
        assert_eq!(h.answer(3.0, 2.5), 0.0);
        assert!((h.answer(-10.0, 10.0) - 4.0).abs() < 1e-3);
    }
}
