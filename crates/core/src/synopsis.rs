//! The release format: the `Synopsis` trait.

use dpgrid_geo::{Domain, Rect};

/// A differentially private synopsis of a two-dimensional dataset.
///
/// Per §II-B of the paper, a synopsis is a partition of the domain into
/// cells plus a noisy count for each cell. It supports rectangle count
/// queries: fully covered cells contribute their whole noisy count,
/// partially covered cells contribute proportionally to the overlapped
/// area (the *uniformity assumption*).
///
/// Everything reachable through this trait is safe to publish: the
/// implementations only store noisy (ε-differentially-private) values,
/// never the raw data.
///
/// `Sync` is a supertrait so that synopses can be queried from many
/// threads at once: the default [`Synopsis::answer_all`] chunks large
/// batches across scoped threads, and the evaluation runner shares
/// synopses across its method threads the same way.
pub trait Synopsis: Sync {
    /// The domain the synopsis covers.
    fn domain(&self) -> &Domain;

    /// Total privacy budget ε consumed building the synopsis.
    fn epsilon(&self) -> f64;

    /// Estimated number of points inside `query`.
    ///
    /// Queries are clipped to the domain; a query that misses the domain
    /// answers `0`. Estimates can be negative because cell counts are
    /// noisy — callers that need non-negative answers may clamp.
    fn answer(&self, query: &Rect) -> f64;

    /// The synopsis's leaf cells and their (post-processed) noisy counts.
    ///
    /// The rectangles partition the domain. Used for synthetic-data
    /// regeneration, for serialising releases, and as the input of
    /// [`crate::CompiledSurface`] compilation.
    ///
    /// **Allocates a fresh `Vec` on every call** — never call it on the
    /// per-query hot path. Implementations that hold their cells should
    /// override [`Synopsis::total_estimate`] (and any similar
    /// aggregate) to read the stored cells directly instead of going
    /// through this method.
    fn cells(&self) -> Vec<(Rect, f64)>;

    /// Answers a batch of queries.
    ///
    /// The default implementation evaluates [`Synopsis::answer`] per
    /// query, chunking the batch across `std::thread::scope` threads
    /// once it is large enough to amortise the spawns (mirroring the
    /// evaluation runner's method-level parallelism). Implementations
    /// with a cheaper batch path — e.g. [`crate::Release`], which
    /// answers through its compiled surface — may override.
    fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        crate::surface::answer_all_batched(queries, |q| self.answer(q))
    }

    /// Sum of all leaf-cell counts — the synopsis's estimate of the
    /// dataset cardinality.
    ///
    /// The default goes through [`Synopsis::cells`] and therefore
    /// allocates; implementations that store their cells (or a prefix
    /// sum) should override with a direct read.
    fn total_estimate(&self) -> f64 {
        self.cells().iter().map(|(_, v)| v).sum()
    }
}

/// Object-safe helpers for boxed synopses. `answer_all` and
/// `total_estimate` forward too, so implementation overrides (like
/// [`crate::Release`]'s surface-backed batch path) survive indirection.
impl<S: Synopsis + ?Sized> Synopsis for &S {
    fn domain(&self) -> &Domain {
        (**self).domain()
    }
    fn epsilon(&self) -> f64 {
        (**self).epsilon()
    }
    fn answer(&self, query: &Rect) -> f64 {
        (**self).answer(query)
    }
    fn cells(&self) -> Vec<(Rect, f64)> {
        (**self).cells()
    }
    fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        (**self).answer_all(queries)
    }
    fn total_estimate(&self) -> f64 {
        (**self).total_estimate()
    }
}

impl<S: Synopsis + ?Sized> Synopsis for Box<S> {
    fn domain(&self) -> &Domain {
        (**self).domain()
    }
    fn epsilon(&self) -> f64 {
        (**self).epsilon()
    }
    fn answer(&self, query: &Rect) -> f64 {
        (**self).answer(query)
    }
    fn cells(&self) -> Vec<(Rect, f64)> {
        (**self).cells()
    }
    fn answer_all(&self, queries: &[Rect]) -> Vec<f64> {
        (**self).answer_all(queries)
    }
    fn total_estimate(&self) -> f64 {
        (**self).total_estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::Domain;

    /// Minimal synopsis for exercising the provided methods: one cell
    /// holding a fixed count.
    struct OneCell {
        domain: Domain,
        count: f64,
    }

    impl Synopsis for OneCell {
        fn domain(&self) -> &Domain {
            &self.domain
        }
        fn epsilon(&self) -> f64 {
            1.0
        }
        fn answer(&self, query: &Rect) -> f64 {
            self.count * self.domain.coverage(query)
        }
        fn cells(&self) -> Vec<(Rect, f64)> {
            vec![(*self.domain.rect(), self.count)]
        }
    }

    #[test]
    fn provided_methods_work() {
        let s = OneCell {
            domain: Domain::from_corners(0.0, 0.0, 2.0, 2.0).unwrap(),
            count: 8.0,
        };
        assert_eq!(s.total_estimate(), 8.0);
        let qs = [
            Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
            Rect::new(0.0, 0.0, 2.0, 2.0).unwrap(),
        ];
        let answers = s.answer_all(&qs);
        assert_eq!(answers, vec![2.0, 8.0]);
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let s = OneCell {
            domain: Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap(),
            count: 4.0,
        };
        let by_ref: &dyn Synopsis = &s;
        assert_eq!(by_ref.total_estimate(), 4.0);
        let boxed: Box<dyn Synopsis> = Box::new(s);
        assert_eq!(boxed.epsilon(), 1.0);
        assert_eq!(boxed.cells().len(), 1);
    }
}
