//! The transport-facing service abstraction.
//!
//! A transport (TCP frontend, HTTP handler, in-process test double…)
//! should not care *which* engine answers its queries — only that
//! something can take [`QueryRequest`] batches and report stats. The
//! [`QueryService`] trait is that seam: [`QueryEngine`] implements it,
//! and the wire protocol ([`crate::wire`]) and every transport built
//! on it (e.g. the `dpgrid-net` TCP server) are written against the
//! trait, so a mock service, a sharding proxy or a future engine
//! swap in without touching transport code.

use std::sync::Arc;

use crate::engine::{EngineStats, QueryEngine, QueryRequest, QueryResponse};
use crate::error::Result;
use crate::window::{WindowAnswer, WindowQuery};

/// Anything that can answer batched release queries.
///
/// `Send + Sync` is a supertrait bound because transports hand one
/// service instance to many connection threads; implementations are
/// expected to use interior locking the way [`QueryEngine`] does.
///
/// Implementations must uphold the engine's response contract:
/// responses come back in request order, one per request, and a
/// failing request (unknown key, shed by admission control) fails
/// alone without poisoning the rest of the batch.
pub trait QueryService: Send + Sync {
    /// Answers a batch of requests, one result per request, in order.
    fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>>;

    /// Point-in-time traffic and cache counters.
    fn stats(&self) -> EngineStats;

    /// The advertised keyspace: sorted release keys this service can
    /// currently answer for. Travels on the wire as the `Keys`
    /// request, and the sharded serving tier uses it to verify
    /// placement (see [`crate::shard::Shard`]). A service may
    /// legitimately advertise a snapshot that is already stale by the
    /// time the caller acts on it — keys are serving metadata, not a
    /// consistency guarantee.
    fn keys(&self) -> Vec<String>;

    /// Answers a sliding-window query by summing the epoch surfaces
    /// covering `query.range` — see [`crate::window`] for the
    /// coverage contract.
    ///
    /// The default resolves coverage *here*, from this service's
    /// advertised [`keys`](QueryService::keys), and fans one
    /// [`answer_batch`](QueryService::answer_batch) over the covering
    /// surfaces — correct for any service. Implementations fronting a
    /// remote peer should override it to forward the window as one
    /// protocol frame instead (the `dpgrid-net` `RemoteShard` does),
    /// so a window costs one round trip rather than a keys dump plus
    /// a per-epoch fan-out.
    fn window(&self, query: &WindowQuery) -> Result<WindowAnswer> {
        crate::window::resolve_window_via_keys(self, query)
    }

    /// The write path, if this service has one: the
    /// [`ReportService`](crate::report::ReportService) that absorbs
    /// LDP report batches arriving on the same connections that answer
    /// queries. The default — `None` — makes the service read-only:
    /// the dispatch layer answers `Report` frames with
    /// `MalformedRequest`, indistinguishable from a pre-`Report`
    /// server, so clients fall back identically ("feature
    /// unsupported", per the versioning policy).
    fn reports(&self) -> Option<&dyn crate::report::ReportService> {
        None
    }
}

impl QueryService for QueryEngine {
    fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        QueryEngine::answer_batch(self, requests)
    }

    fn stats(&self) -> EngineStats {
        QueryEngine::stats(self)
    }

    fn keys(&self) -> Vec<String> {
        QueryEngine::keys(self)
    }
}

/// Shared services forward transparently, so transports can hold an
/// `Arc<QueryEngine>` (or `Arc<dyn QueryService>`) per connection
/// thread.
impl<S: QueryService + ?Sized> QueryService for Arc<S> {
    fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        (**self).answer_batch(requests)
    }

    fn stats(&self) -> EngineStats {
        (**self).stats()
    }

    fn keys(&self) -> Vec<String> {
        (**self).keys()
    }

    fn window(&self, query: &WindowQuery) -> Result<WindowAnswer> {
        (**self).window(query)
    }

    fn reports(&self) -> Option<&dyn crate::report::ReportService> {
        (**self).reports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;
    use dpgrid_core::{Method, Pipeline};
    use dpgrid_geo::generators::PaperDataset;
    use dpgrid_geo::Rect;

    #[test]
    fn engine_serves_through_the_trait_object() {
        let ds = PaperDataset::Storage.generate_n(5, 1_500).unwrap();
        let mut catalog = Catalog::new();
        Pipeline::new(&ds)
            .method(Method::ug(8))
            .seed(5)
            .publish_into(&mut catalog, "k")
            .unwrap();
        let service: Arc<dyn QueryService> = Arc::new(QueryEngine::new(catalog));
        let q = Rect::new(-120.0, 20.0, -90.0, 40.0).unwrap();
        let responses = service.answer_batch(&[QueryRequest::new("k", vec![q])]);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].as_ref().unwrap().answers.len(), 1);
        assert_eq!(service.stats().requests, 1);
        assert_eq!(service.keys(), vec!["k".to_string()]);
    }
}
