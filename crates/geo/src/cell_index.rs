//! Query-time indexes over arbitrary rectangle partitions.
//!
//! A published synopsis is just a list of `(Rect, f64)` leaf cells. The
//! naive way to answer a rectangle count query from it — test every cell
//! for overlap — is O(cells) per query, which makes large releases
//! unusable at serving scale. This module compiles a cell list **once**
//! into an index that answers in (poly)logarithmic time:
//!
//! * [`LatticeIndex`] — the fast path. When every cell edge lies on a
//!   common rectilinear lattice (uniform grids, hierarchy / wavelet
//!   leaves, and most adaptive grids after refinement), the cells are
//!   scattered onto a [`crate::DenseGrid`] over that lattice and summed
//!   through a [`crate::SummedAreaTable`]; a query is two binary searches over the edge
//!   arrays plus O(1) prefix-sum lookups.
//! * [`BandIndex`] — the general path. Cells are bucketed into *bands*
//!   of identical y-extent, each band keeping its cells sorted by `x0`
//!   with prefix sums; bands intersecting the query's y-range are found
//!   through a segment tree over band start coordinates with max-end
//!   pruning, and every tree node doubles as a level of a coarse
//!   y-skip-list: it pre-aggregates its subtree's bounding extents and
//!   value sum, so a subtree lying entirely inside the query is
//!   absorbed in O(1) instead of stabbing each band. A query costs
//!   O(log bands + boundary·log cells-per-band), where only the bands
//!   *partially* covered at the query's rim are stabbed — wide
//!   dashboard-style queries touch O(log bands) nodes total instead of
//!   O(bands).
//!
//! Both indexes reproduce the *uniformity assumption* semantics of
//! [`Rect::overlap_fraction`] exactly (up to floating-point roundoff):
//! a cell with value `v` contributes `v · |cell ∩ query| / |cell|`.
//! [`CellIndex::build`] picks the lattice path whenever it applies and
//! is affordable, and falls back to bands otherwise, so callers never
//! need to know which partition shape they are holding.

use crate::{Domain, Rect, MAX_GRID_CELLS};

/// Maximum blow-up factor the lattice path may pay: scattering `n`
/// cells onto a lattice of more than `LATTICE_BLOWUP_CAP · n` slots
/// falls back to the band index instead (an adversarially irregular
/// partition can induce an O(n²) lattice).
const LATTICE_BLOWUP_CAP: usize = 8;

/// Relative tolerance for merging near-equal y-extents into one band.
///
/// Adaptive-grid level-2 subdivision computes cell edges as
/// `parent_y0 + i · (height / m₂)`, so two cells meant to share a row
/// can disagree by a few ULPs of float drift. Snapping such extents
/// into the first-seen band keeps the index tight (one band per
/// logical row instead of one per drifted bit pattern) while
/// perturbing any answer by at most the same relative amount — far
/// below the 1e-9 equivalence budget the compiled surface is tested
/// against.
///
/// The tolerance scales with `max(band height, |y|)`: ULP drift is
/// relative to the coordinate's *magnitude*, so a thin band far from
/// the origin (projected coordinates, e.g. UTM metres around 10⁶)
/// drifts by far more than its own height. At 1e-12 (~4 ULPs of the
/// magnitude) genuinely distinct rows — separated by at least a cell
/// height — stay far outside the snap.
const BAND_Y_SNAP_REL: f64 = 1e-12;

/// A compiled index over a rectangle partition, ready to answer
/// uniformity-assumption range-count queries in sublinear time.
#[derive(Debug, Clone)]
pub enum CellIndex {
    /// All cells align to a common rectilinear lattice.
    Lattice(LatticeIndex),
    /// Irregular partition: sorted row-band index.
    Bands(BandIndex),
}

impl CellIndex {
    /// Compiles a cell list. Infallible: any list (including empty or
    /// degenerate cells, which can never contribute to an answer) gets
    /// an index; the lattice path is chosen when it applies.
    pub fn build(cells: &[(Rect, f64)]) -> CellIndex {
        match LatticeIndex::try_build(cells) {
            Some(lattice) => CellIndex::Lattice(lattice),
            None => CellIndex::Bands(BandIndex::build(cells)),
        }
    }

    /// Estimated count inside `query` under the uniformity assumption;
    /// exactly the sum `Σ vᵢ · cellᵢ.overlap_fraction(query)` the linear
    /// scan computes, up to floating-point roundoff.
    pub fn answer(&self, query: &Rect) -> f64 {
        match self {
            CellIndex::Lattice(l) => l.answer(query),
            CellIndex::Bands(b) => b.answer(query),
        }
    }

    /// Sum of all cell values (the partition's total estimate), O(1).
    pub fn total(&self) -> f64 {
        match self {
            CellIndex::Lattice(l) => l.total(),
            CellIndex::Bands(b) => b.total(),
        }
    }

    /// Estimated resident size in bytes (struct plus owned arrays).
    ///
    /// This is the quantity serving-side memory budgets account for: it
    /// is dominated by the heap arrays (edge coordinates and prefix
    /// sums for the lattice path, bands and tree aggregates for the
    /// band path), so the enum discriminant padding is ignored.
    pub fn memory_bytes(&self) -> usize {
        match self {
            CellIndex::Lattice(l) => l.memory_bytes(),
            CellIndex::Bands(b) => b.memory_bytes(),
        }
    }
}

/// Sorted, deduplicated edge coordinates of one axis.
fn collect_edges(
    cells: &[&(Rect, f64)],
    lo: impl Fn(&Rect) -> f64,
    hi: impl Fn(&Rect) -> f64,
) -> Vec<f64> {
    let mut edges: Vec<f64> = Vec::with_capacity(cells.len() * 2);
    for (rect, _) in cells {
        edges.push(lo(rect));
        edges.push(hi(rect));
    }
    edges.sort_by(f64::total_cmp);
    edges.dedup_by(|a, b| a == b);
    edges
}

/// Index of `x` in a sorted edge array, or `None` when `x` is not
/// (bitwise) one of the edges.
fn edge_index(edges: &[f64], x: f64) -> Option<usize> {
    let i = edges.partition_point(|&e| e < x);
    (i < edges.len() && edges[i] == x).then_some(i)
}

/// Per-axis decomposition of the continuous interval `[q0, q1]` against
/// a sorted edge array: at most three segments of lattice slots
/// `(first_slot, one_past_last_slot, weight)` — a partial leading slot,
/// a run of fully covered slots, and a partial trailing slot.
fn axis_segments(edges: &[f64], q0: f64, q1: f64) -> [Option<(usize, usize, f64)>; 3] {
    let mut out = [None, None, None];
    let n = edges.len() - 1; // number of slots
    let q0 = q0.max(edges[0]);
    let q1 = q1.min(edges[n]);
    if q1 <= q0 {
        return out;
    }
    // Slot containing q0: rightmost edge <= q0.
    let i0 = edges
        .partition_point(|&e| e <= q0)
        .saturating_sub(1)
        .min(n - 1);
    // Slot containing q1 (as an exclusive upper bound).
    let i1 = edges
        .partition_point(|&e| e < q1)
        .saturating_sub(1)
        .min(n - 1)
        .max(i0);
    let frac = |i: usize| {
        let w = edges[i + 1] - edges[i];
        if w <= 0.0 {
            return 0.0;
        }
        ((q1.min(edges[i + 1]) - q0.max(edges[i])) / w).clamp(0.0, 1.0)
    };
    if i0 == i1 {
        out[0] = Some((i0, i0 + 1, frac(i0)));
        return out;
    }
    out[0] = Some((i0, i0 + 1, frac(i0)));
    if i0 + 1 < i1 {
        out[1] = Some((i0 + 1, i1, 1.0));
    }
    out[2] = Some((i1, i1 + 1, frac(i1)));
    out
}

/// The regular-lattice fast path: cells scattered onto the rectilinear
/// lattice induced by their own edges, summed through a
/// [`crate::SummedAreaTable`].
///
/// Lattice slots need not be equi-width — only *shared*: every cell
/// edge must coincide (bitwise) with a lattice line. Cells spanning
/// several slots are split with their value distributed proportionally
/// to area, which leaves every uniformity-assumption query answer
/// unchanged.
#[derive(Debug, Clone)]
pub struct LatticeIndex {
    /// `cols + 1` ascending x edge coordinates.
    xs: Vec<f64>,
    /// `rows + 1` ascending y edge coordinates.
    ys: Vec<f64>,
    /// Prefix sums over the scattered `cols × rows` value matrix.
    sat: crate::SummedAreaTable,
}

impl LatticeIndex {
    /// Attempts the lattice compilation; `None` when the cells do not
    /// align to their induced lattice or the lattice would be more than
    /// `LATTICE_BLOWUP_CAP` (8) times larger than the cell list.
    pub fn try_build(cells: &[(Rect, f64)]) -> Option<LatticeIndex> {
        let live: Vec<&(Rect, f64)> = cells.iter().filter(|(r, _)| !r.is_empty()).collect();
        if live.is_empty() {
            return None;
        }
        // Edges come from the live cells only: a degenerate cell off the
        // lattice must not inflate the slot grid or stretch its bounds.
        let xs = collect_edges(&live, |r| r.x0(), |r| r.x1());
        let ys = collect_edges(&live, |r| r.y0(), |r| r.y1());
        if xs.len() < 2 || ys.len() < 2 {
            return None;
        }
        let (cols, rows) = (xs.len() - 1, ys.len() - 1);
        let slots = cols.checked_mul(rows)?;
        if slots > MAX_GRID_CELLS || slots > live.len().saturating_mul(LATTICE_BLOWUP_CAP) {
            return None;
        }

        // Scatter each cell onto its slot block, splitting the value by
        // area share. A cell edge that is not a lattice line means the
        // partition is not rectilinear after all -> give up.
        let domain = Domain::from_corners(xs[0], ys[0], xs[cols], ys[rows]).ok()?;
        let mut grid = crate::DenseGrid::zeros(domain, cols, rows).ok()?;
        for (rect, v) in live {
            let ix0 = edge_index(&xs, rect.x0())?;
            let ix1 = edge_index(&xs, rect.x1())?;
            let iy0 = edge_index(&ys, rect.y0())?;
            let iy1 = edge_index(&ys, rect.y1())?;
            debug_assert!(ix0 < ix1 && iy0 < iy1);
            let area = rect.area();
            for iy in iy0..iy1 {
                let h = ys[iy + 1] - ys[iy];
                for ix in ix0..ix1 {
                    let w = xs[ix + 1] - xs[ix];
                    grid.add(ix, iy, v * (w * h / area));
                }
            }
        }
        let sat = grid.sat();
        Some(LatticeIndex { xs, ys, sat })
    }

    /// Lattice shape as `(cols, rows)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.xs.len() - 1, self.ys.len() - 1)
    }

    /// Answers a query in O(log cols + log rows).
    pub fn answer(&self, query: &Rect) -> f64 {
        let xsegs = axis_segments(&self.xs, query.x0(), query.x1());
        let ysegs = axis_segments(&self.ys, query.y0(), query.y1());
        let mut sum = 0.0;
        for &(r0, r1, wy) in ysegs.iter().flatten() {
            if wy <= 0.0 {
                continue;
            }
            for &(c0, c1, wx) in xsegs.iter().flatten() {
                let w = wx * wy;
                if w > 0.0 {
                    sum += w * self.sat.sum(c0, r0, c1, r1);
                }
            }
        }
        sum
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.sat.total()
    }

    /// Estimated resident size in bytes: the struct, both edge arrays
    /// and the summed-area table.
    pub fn memory_bytes(&self) -> usize {
        // `size_of::<Self>()` already counts the inline SAT header, so
        // only the SAT's heap share is added on top.
        std::mem::size_of::<Self>()
            + (self.xs.len() + self.ys.len()) * std::mem::size_of::<f64>()
            + (self.sat.memory_bytes() - std::mem::size_of::<crate::SummedAreaTable>())
    }
}

/// A snap group under construction: the band's y-extent plus the
/// member cells collected before the per-band x-sort.
type BandGroup<'a> = (f64, f64, Vec<&'a (Rect, f64)>);

/// One band: all cells sharing the same y-extent, sorted by `x0`.
#[derive(Debug, Clone)]
struct Band {
    y0: f64,
    y1: f64,
    /// Ascending cell left edges.
    x0s: Vec<f64>,
    /// Ascending cell right edges (cells in a band are x-disjoint, so
    /// sorting by `x0` sorts `x1` too).
    x1s: Vec<f64>,
    /// Cell values, same order.
    values: Vec<f64>,
    /// `values` prefix sums (`len + 1` entries).
    prefix: Vec<f64>,
    /// Set when the band's cells overlap in x (not a true partition):
    /// answer this band by linear scan to stay faithful to the
    /// reference semantics.
    overlapping: bool,
}

impl Band {
    /// Contribution of this band to `query`, already restricted to the
    /// band's y-slab.
    fn answer(&self, query: &Rect) -> f64 {
        let fy = (query.y1().min(self.y1) - query.y0().max(self.y0)) / (self.y1 - self.y0);
        if fy <= 0.0 {
            return 0.0;
        }
        let (qx0, qx1) = (query.x0(), query.x1());
        if self.overlapping {
            let mut sum = 0.0;
            for i in 0..self.values.len() {
                let w = self.x1s[i] - self.x0s[i];
                if w <= 0.0 {
                    continue;
                }
                let ov = qx1.min(self.x1s[i]) - qx0.max(self.x0s[i]);
                if ov > 0.0 {
                    sum += self.values[i] * (ov / w).clamp(0.0, 1.0);
                }
            }
            return sum * fy.clamp(0.0, 1.0);
        }
        // First cell whose right edge passes qx0, first cell starting at
        // or after qx1: the query's x-span is exactly [lo, hi).
        let lo = self.x1s.partition_point(|&x| x <= qx0);
        let hi = self.x0s.partition_point(|&x| x < qx1);
        if lo >= hi {
            return 0.0;
        }
        let mut sum = self.prefix[hi] - self.prefix[lo];
        // The two boundary cells may be partially covered.
        for i in [lo, hi - 1] {
            let w = self.x1s[i] - self.x0s[i];
            if w <= 0.0 {
                sum -= self.values[i];
                continue;
            }
            let fx = ((qx1.min(self.x1s[i]) - qx0.max(self.x0s[i])) / w).clamp(0.0, 1.0);
            sum -= self.values[i] * (1.0 - fx);
            if lo == hi - 1 {
                break; // single boundary cell: adjust once
            }
        }
        sum * fy.clamp(0.0, 1.0)
    }
}

/// Traversal statistics of one [`BandIndex`] query — how much of the
/// band structure the answer actually touched.
///
/// Exposed so regression tests (and capacity planning) can assert the
/// skip-list bound: a query fully covering `k` interior bands must
/// absorb them through O(log bands) aggregated nodes
/// (`nodes_absorbed`) and stab only the O(1) partially covered rim
/// bands (`bands_stabbed`), never scale with `k`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BandStabStats {
    /// Segment-tree nodes visited (including absorbed and pruned ones).
    pub nodes_visited: usize,
    /// Bands answered individually (partial overlap at the query rim).
    pub bands_stabbed: usize,
    /// Subtrees absorbed whole through their pre-aggregated sum.
    pub nodes_absorbed: usize,
}

/// The general path: a sorted row-bucket / interval index with a
/// coarse y-skip-list over the bands.
///
/// Bands are ordered by `y0`; a segment tree storing each subrange's
/// maximum `y1` prunes whole subtrees that end before the query starts,
/// so a stab visits O(log bands) tree nodes plus the bands actually
/// intersecting the query's y-range. Each node additionally carries its
/// subtree's bounding y/x extents and total value — the coarse levels
/// of a deterministic skip list — so a subtree *fully contained* in the
/// query contributes its precomputed sum in O(1) instead of being
/// walked band by band. Wide queries therefore decompose canonically:
/// O(log bands) absorbed nodes plus the partially covered rim bands.
#[derive(Debug, Clone)]
pub struct BandIndex {
    bands: Vec<Band>,
    /// Segment-tree node aggregates (1-indexed, size `2·bands.len()`
    /// rounded up to a power of two). One struct per node keeps the
    /// prune *and* absorb tests on a single cache line — the stab walk
    /// is memory-bound, so split parallel arrays would cost one miss
    /// per field instead of one per node.
    nodes: Vec<NodeAgg>,
    /// Leaf count of the segment tree (power of two ≥ `bands.len()`).
    tree_base: usize,
    total: f64,
}

/// Per-subtree aggregates: the pruning bound plus the skip-list
/// payload. Empty slots hold sign-appropriate infinities (and sum 0)
/// so they prune and absorb vacuously without edge guards.
#[derive(Debug, Clone, Copy)]
struct NodeAgg {
    /// Maximum band `y1` (`-inf` when empty) — the pruning bound.
    max_y1: f64,
    /// Minimum band `y0` (`+inf` when empty). Bands are y0-sorted, so
    /// this equals the leftmost live band's `y0`.
    min_y0: f64,
    /// Minimum cell `x0` (`+inf` when empty).
    min_x0: f64,
    /// Maximum cell `x1` (`-inf` when empty).
    max_x1: f64,
    /// Total cell value — the sum absorbed when the subtree is fully
    /// inside the query.
    sum: f64,
}

impl NodeAgg {
    const EMPTY: NodeAgg = NodeAgg {
        max_y1: f64::NEG_INFINITY,
        min_y0: f64::INFINITY,
        min_x0: f64::INFINITY,
        max_x1: f64::NEG_INFINITY,
        sum: 0.0,
    };

    fn merge(a: &NodeAgg, b: &NodeAgg) -> NodeAgg {
        NodeAgg {
            max_y1: a.max_y1.max(b.max_y1),
            min_y0: a.min_y0.min(b.min_y0),
            min_x0: a.min_x0.min(b.min_x0),
            max_x1: a.max_x1.max(b.max_x1),
            sum: a.sum + b.sum,
        }
    }
}

impl BandIndex {
    /// Groups cells into bands and builds the stabbing tree. Degenerate
    /// (zero-area) cells are dropped — they cannot contribute to any
    /// query.
    pub fn build(cells: &[(Rect, f64)]) -> BandIndex {
        // Group by exact y-extent.
        let mut sorted: Vec<&(Rect, f64)> = cells.iter().filter(|(r, _)| !r.is_empty()).collect();
        sorted.sort_by(|a, b| {
            a.0.y0()
                .total_cmp(&b.0.y0())
                .then(a.0.y1().total_cmp(&b.0.y1()))
                .then(a.0.x0().total_cmp(&b.0.x0()))
        });
        // Group into bands. The tolerance snap treats y-extents within a
        // few ULPs of the current band (float drift from derived
        // subdivision edges) as the same row; sorting by (y0, y1) makes
        // drifted twins adjacent, so comparing against the last group
        // suffices. Snapped members may arrive out of x-order (the sort
        // key ranked their drifted y0 first), so cells are grouped
        // first and each band x-sorted afterwards.
        let mut groups: Vec<BandGroup> = Vec::new();
        for cell in sorted {
            let rect = &cell.0;
            let same_band = groups.last().is_some_and(|(y0, y1, _)| {
                let scale = (y1 - y0).abs().max(y0.abs()).max(y1.abs());
                let tol = scale * BAND_Y_SNAP_REL;
                (y0 - rect.y0()).abs() <= tol && (y1 - rect.y1()).abs() <= tol
            });
            if !same_band {
                groups.push((rect.y0(), rect.y1(), Vec::new()));
            }
            groups.last_mut().expect("group exists").2.push(cell);
        }
        let mut bands: Vec<Band> = Vec::with_capacity(groups.len());
        for (y0, y1, mut members) in groups {
            members.sort_by(|a, b| a.0.x0().total_cmp(&b.0.x0()));
            let mut band = Band {
                y0,
                y1,
                x0s: Vec::with_capacity(members.len()),
                x1s: Vec::with_capacity(members.len()),
                values: Vec::with_capacity(members.len()),
                prefix: vec![0.0],
                overlapping: false,
            };
            for (rect, v) in members {
                if let Some(&prev_x1) = band.x1s.last() {
                    if rect.x0() < prev_x1 {
                        band.overlapping = true;
                    }
                }
                band.x0s.push(rect.x0());
                band.x1s.push(rect.x1());
                band.values.push(*v);
                band.prefix
                    .push(band.prefix.last().expect("non-empty prefix") + v);
            }
            bands.push(band);
        }
        let total = bands
            .iter()
            .map(|b| b.prefix.last().expect("non-empty prefix"))
            .sum();

        // Aggregate segment tree over bands (which are sorted by y0):
        // max y1 for pruning, plus the skip-list payload — subtree
        // bounding extents and value sums — for O(1) absorption of
        // fully covered subtrees.
        let tree_base = bands.len().next_power_of_two().max(1);
        let mut nodes = vec![NodeAgg::EMPTY; 2 * tree_base];
        for (i, b) in bands.iter().enumerate() {
            nodes[tree_base + i] = NodeAgg {
                max_y1: b.y1,
                min_y0: b.y0,
                // Cells are x0-sorted, so the band's leftmost edge is
                // the first x0; right edges are only co-sorted for
                // disjoint bands, so take the explicit max.
                min_x0: b.x0s.first().copied().unwrap_or(f64::INFINITY),
                max_x1: b.x1s.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                sum: *b.prefix.last().expect("non-empty prefix"),
            };
        }
        for i in (1..tree_base).rev() {
            nodes[i] = NodeAgg::merge(&nodes[2 * i], &nodes[2 * i + 1]);
        }
        BandIndex {
            bands,
            nodes,
            tree_base,
            total,
        }
    }

    /// Number of bands.
    pub fn band_count(&self) -> usize {
        self.bands.len()
    }

    /// Answers a query in O(log bands + boundary·log band-width) where
    /// `boundary` is the number of bands only *partially* covered by
    /// the query; fully covered interior runs are absorbed through the
    /// skip-list aggregates without being stabbed.
    pub fn answer(&self, query: &Rect) -> f64 {
        self.answer_with_stats(query).0
    }

    /// [`BandIndex::answer`] plus the [`BandStabStats`] describing how
    /// the tree walk decomposed the query — for skip-list regression
    /// tests and serving-side diagnostics.
    pub fn answer_with_stats(&self, query: &Rect) -> (f64, BandStabStats) {
        let mut stats = BandStabStats::default();
        if self.bands.is_empty() || query.is_empty() {
            return (0.0, stats);
        }
        // Candidate bands start before the query ends...
        let ub = self.bands.partition_point(|b| b.y0 < query.y1());
        if ub == 0 {
            return (0.0, stats);
        }
        // ...and the tree prunes those ending before the query starts.
        let mut sum = 0.0;
        self.stab(1, 0, self.tree_base, ub, query, &mut sum, &mut stats);
        (sum, stats)
    }

    /// Recursive pruned walk: node `node` covers band indices
    /// `[lo, hi)`; only indices `< ub` are candidates.
    #[allow(clippy::too_many_arguments)]
    fn stab(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        ub: usize,
        query: &Rect,
        sum: &mut f64,
        stats: &mut BandStabStats,
    ) {
        stats.nodes_visited += 1;
        let agg = &self.nodes[node];
        if lo >= ub || lo >= self.bands.len() || agg.max_y1 <= query.y0() {
            return;
        }
        // Coarse skip: every band in this subtree lies fully inside the
        // query (its y-extent inside [qy0, qy1], every cell's x-extent
        // inside [qx0, qx1]), so each contributes exactly its total and
        // the precomputed subtree sum is the exact answer share. A band
        // beyond `ub` can never pass this test — it would need
        // y1 ≤ qy1 ≤ y0, impossible for a non-degenerate band — and
        // empty slots pass vacuously with sum 0, so neither needs a
        // separate guard.
        // The x-conditions lead the chain: stab-heavy queries (narrow
        // in x, tall in y) fail them at every node, so they
        // short-circuit the test where it runs most often.
        if agg.min_x0 >= query.x0()
            && agg.max_x1 <= query.x1()
            && agg.min_y0 >= query.y0()
            && agg.max_y1 <= query.y1()
        {
            *sum += agg.sum;
            stats.nodes_absorbed += 1;
            return;
        }
        if hi - lo == 1 {
            *sum += self.bands[lo].answer(query);
            stats.bands_stabbed += 1;
            return;
        }
        let mid = (lo + hi) / 2;
        self.stab(2 * node, lo, mid, ub, query, sum, stats);
        self.stab(2 * node + 1, mid, hi, ub, query, sum, stats);
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Estimated resident size in bytes: the struct, the per-band cell
    /// arrays and the segment-tree aggregates.
    pub fn memory_bytes(&self) -> usize {
        let bands: usize = self
            .bands
            .iter()
            .map(|b| {
                std::mem::size_of::<Band>()
                    + (b.x0s.len() + b.x1s.len() + b.values.len() + b.prefix.len())
                        * std::mem::size_of::<f64>()
            })
            .sum();
        std::mem::size_of::<Self>() + bands + self.nodes.len() * std::mem::size_of::<NodeAgg>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenseGrid, Domain};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Reference semantics: the linear scan every index must match.
    fn linear_scan(cells: &[(Rect, f64)], q: &Rect) -> f64 {
        cells.iter().map(|(r, v)| v * r.overlap_fraction(q)).sum()
    }

    fn uniform_cells(cols: usize, rows: usize) -> Vec<(Rect, f64)> {
        let domain = Domain::from_corners(0.0, 0.0, 10.0, 6.0).unwrap();
        let grid = DenseGrid::from_fn(domain, cols, rows, |c, r| {
            ((c * 31 + r * 17) % 13) as f64 - 4.0
        })
        .unwrap();
        grid.iter_cells().map(|(_, _, rect, v)| (rect, v)).collect()
    }

    /// An AG-like two-level partition: a 4×4 top grid, each top cell
    /// subdivided into its own k×k subgrid.
    fn adaptive_cells() -> Vec<(Rect, f64)> {
        let domain = Domain::from_corners(-2.0, 1.0, 6.0, 9.0).unwrap();
        let mut cells = Vec::new();
        for row in 0..4 {
            for col in 0..4 {
                let parent = domain.cell_rect(4, 4, col, row);
                let k = 1 + (col * 5 + row * 3) % 4;
                for sr in 0..k {
                    for sc in 0..k {
                        let cell = parent.grid_cell(k, k, sc, sr);
                        cells.push((cell, ((sc + sr + col + row) as f64) - 2.5));
                    }
                }
            }
        }
        cells
    }

    fn query_mix(domain: &Rect) -> Vec<Rect> {
        let (x0, y0, x1, y1) = (domain.x0(), domain.y0(), domain.x1(), domain.y1());
        let w = domain.width();
        let h = domain.height();
        vec![
            // Domain-spanning.
            *domain,
            Rect::new(x0 - w, y0 - h, x1 + w, y1 + h).unwrap(),
            // Slivers.
            Rect::new(x0 + 0.499 * w, y0, x0 + 0.501 * w, y1).unwrap(),
            Rect::new(x0, y0 + 0.1 * h, x1, y0 + 0.1001 * h).unwrap(),
            // Interior boxes.
            Rect::new(x0 + 0.25 * w, y0 + 0.25 * h, x0 + 0.75 * w, y0 + 0.5 * h).unwrap(),
            Rect::new(x0 + 0.1 * w, y0 + 0.6 * h, x0 + 0.2 * w, y0 + 0.9 * h).unwrap(),
            // Misses.
            Rect::new(x1 + 1.0, y1 + 1.0, x1 + 2.0, y1 + 2.0).unwrap(),
            Rect::new(x0 - 3.0, y0, x0 - 1.0, y1).unwrap(),
        ]
    }

    fn assert_matches_scan(cells: &[(Rect, f64)], index: &CellIndex, queries: &[Rect]) {
        for q in queries {
            let expect = linear_scan(cells, q);
            let got = index.answer(q);
            assert!(
                (got - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                "query {q:?}: index {got} vs scan {expect}"
            );
        }
    }

    #[test]
    fn uniform_grid_compiles_to_lattice() {
        let cells = uniform_cells(16, 12);
        let index = CellIndex::build(&cells);
        assert!(matches!(index, CellIndex::Lattice(_)));
        let domain = Rect::new(0.0, 0.0, 10.0, 6.0).unwrap();
        assert_matches_scan(&cells, &index, &query_mix(&domain));
        assert!((index.total() - linear_scan(&cells, &domain)).abs() < 1e-9);
    }

    #[test]
    fn adaptive_partition_compiles_and_matches() {
        let cells = adaptive_cells();
        let index = CellIndex::build(&cells);
        let domain = Rect::new(-2.0, 1.0, 6.0, 9.0).unwrap();
        assert_matches_scan(&cells, &index, &query_mix(&domain));
    }

    #[test]
    fn band_path_matches_on_irregular_partition() {
        // KD-like vertical strips of differing heights: no common
        // lattice small enough, so the band path must engage when the
        // lattice path is skipped.
        let cells = adaptive_cells();
        let index = CellIndex::Bands(BandIndex::build(&cells));
        let domain = Rect::new(-2.0, 1.0, 6.0, 9.0).unwrap();
        assert_matches_scan(&cells, &index, &query_mix(&domain));
    }

    #[test]
    fn random_queries_agree_on_both_paths() {
        let cells = adaptive_cells();
        let lattice = CellIndex::build(&cells);
        let bands = CellIndex::Bands(BandIndex::build(&cells));
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..500 {
            let ax = rng.random_range(-3.0..7.0);
            let ay = rng.random_range(0.0..10.0);
            let w = rng.random_range(0.0..8.0);
            let h = rng.random_range(0.0..8.0);
            let q = Rect::new(ax, ay, ax + w, ay + h).unwrap();
            let expect = linear_scan(&cells, &q);
            for index in [&lattice, &bands] {
                let got = index.answer(&q);
                assert!(
                    (got - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                    "query {q:?}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn single_cell_and_empty_inputs() {
        let empty = CellIndex::build(&[]);
        assert_eq!(empty.answer(&Rect::new(0.0, 0.0, 1.0, 1.0).unwrap()), 0.0);
        assert_eq!(empty.total(), 0.0);

        let one = vec![(Rect::new(0.0, 0.0, 2.0, 2.0).unwrap(), 8.0)];
        let index = CellIndex::build(&one);
        let q = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!((index.answer(&q) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cells_are_ignored() {
        let cells = vec![
            (Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 4.0),
            (Rect::new(1.0, 0.0, 1.0, 1.0).unwrap(), 99.0), // zero width
        ];
        let index = CellIndex::build(&cells);
        let q = Rect::new(0.0, 0.0, 2.0, 1.0).unwrap();
        assert!((index.answer(&q) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cells_do_not_inflate_the_lattice() {
        // A zero-area cell with off-lattice coordinates (even outside
        // the live bounding box) must not add lattice lines or stretch
        // the slot grid.
        let mut cells = uniform_cells(8, 8);
        cells.push((Rect::new(-5.0, 3.33, -5.0, 7.77).unwrap(), 42.0));
        match LatticeIndex::try_build(&cells) {
            Some(lattice) => assert_eq!(lattice.shape(), (8, 8)),
            None => panic!("lattice path must still engage"),
        }
    }

    #[test]
    fn near_equal_bands_snap_into_one() {
        // AG level-2 subdivision derives row edges as
        // `y0 + i · (h / m₂)`, so logically identical rows drift by a
        // few ULPs. The band index must snap them together instead of
        // opening one band per drifted bit pattern — and must keep its
        // sorted-x invariant even though drifted twins arrive out of
        // x-order from the (y0, y1, x0) sort.
        let rows = 6;
        let cols = 8;
        let mut cells = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                // Per-cell drift of ~1 ULP on both row edges, varying
                // with the column so x-order and y-order disagree.
                let drift = ((c % 3) as f64 - 1.0) * 2e-16;
                let y0 = r as f64 * (1.0 + drift);
                let y1 = (r + 1) as f64 * (1.0 + drift);
                let x0 = c as f64;
                cells.push((
                    Rect::new(x0, y0, x0 + 1.0, y1.max(y0 + 0.5)).unwrap(),
                    (r * cols + c) as f64 - 10.0,
                ));
            }
        }
        let index = BandIndex::build(&cells);
        assert_eq!(
            index.band_count(),
            rows,
            "drifted rows must merge into one band each"
        );
        // Row 0 drifts multiplicatively from y0 = 0, so its members all
        // share y0 = 0 exactly: the merge there exercises the x-resort,
        // while later rows exercise the y-tolerance.
        let wrapped = CellIndex::Bands(index);
        let domain = Rect::new(0.0, 0.0, cols as f64, rows as f64).unwrap();
        assert_matches_scan(&cells, &wrapped, &query_mix(&domain));
    }

    #[test]
    fn thin_bands_far_from_origin_still_snap() {
        // Projected coordinates (UTM-like): rows of height 0.1 around
        // y = 10⁶. ULP drift there is ~1.2e-10 — larger than a
        // height-relative tolerance would allow, so the snap must
        // scale with the coordinate magnitude.
        let base = 1.0e6;
        let rows = 4;
        let mut cells = Vec::new();
        for r in 0..rows {
            for c in 0..6 {
                let drift = ((c % 3) as f64 - 1.0) * 2.0e-10;
                let y0 = base + r as f64 * 0.1 + drift;
                let x0 = c as f64;
                cells.push((
                    Rect::new(x0, y0, x0 + 1.0, y0 + 0.1).unwrap(),
                    (r + c) as f64,
                ));
            }
        }
        let index = BandIndex::build(&cells);
        assert_eq!(index.band_count(), rows, "ULP-drifted UTM rows must merge");
        let wrapped = CellIndex::Bands(index);
        let domain = Rect::new(0.0, base, 6.0, base + 0.1 * rows as f64).unwrap();
        assert_matches_scan(&cells, &wrapped, &query_mix(&domain));
    }

    #[test]
    fn clearly_distinct_bands_do_not_snap() {
        // The tolerance is relative and tiny: rows 1e-6 apart (huge
        // compared to ULP drift) must stay separate bands.
        let cells = vec![
            (Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(), 1.0),
            (Rect::new(0.0, 1e-6, 1.0, 1.0 + 1e-6).unwrap(), 2.0),
        ];
        let index = BandIndex::build(&cells);
        assert_eq!(index.band_count(), 2);
    }

    #[test]
    fn overlapping_cells_fall_back_to_scan_semantics() {
        // Not a partition: two cells overlap. The index must still match
        // the linear scan (per-band linear fallback).
        let cells = vec![
            (Rect::new(0.0, 0.0, 2.0, 1.0).unwrap(), 4.0),
            (Rect::new(1.0, 0.0, 3.0, 1.0).unwrap(), 2.0),
        ];
        let index = CellIndex::Bands(BandIndex::build(&cells));
        let domain = Rect::new(0.0, 0.0, 3.0, 1.0).unwrap();
        assert_matches_scan(&cells, &index, &query_mix(&domain));
    }

    #[test]
    fn lattice_declines_oversized_blowup() {
        // n cells whose edges induce an O(n²) lattice: staircase of
        // offset rows. try_build must decline, CellIndex must fall back.
        let n = 64;
        let mut cells = Vec::new();
        for i in 0..n {
            let y0 = i as f64;
            // Each row split at a unique offset.
            let split = 0.3 + 9.0 * (i as f64) / n as f64;
            cells.push((Rect::new(0.0, y0, split, y0 + 1.0).unwrap(), 1.0));
            cells.push((Rect::new(split, y0, 10.0, y0 + 1.0).unwrap(), 2.0));
        }
        assert!(LatticeIndex::try_build(&cells).is_none());
        let index = CellIndex::build(&cells);
        assert!(matches!(index, CellIndex::Bands(_)));
        let domain = Rect::new(0.0, 0.0, 10.0, n as f64).unwrap();
        assert_matches_scan(&cells, &index, &query_mix(&domain));
    }

    /// KD-like staircase partition: `n` rows, each split at a unique x
    /// offset, so no affordable lattice exists and every row is its own
    /// band.
    fn staircase_cells(n: usize) -> Vec<(Rect, f64)> {
        let mut cells = Vec::new();
        for i in 0..n {
            let y0 = i as f64;
            let split = 0.3 + 9.0 * (i as f64) / n as f64;
            cells.push((
                Rect::new(0.0, y0, split, y0 + 1.0).unwrap(),
                (i % 7) as f64 - 2.0,
            ));
            cells.push((Rect::new(split, y0, 10.0, y0 + 1.0).unwrap(), 2.0));
        }
        cells
    }

    #[test]
    fn skip_list_absorbs_wide_queries() {
        // A query fully covering interior bands and half-covering the
        // first and last one: the interior run must be absorbed through
        // aggregated nodes, leaving exactly the two rim bands stabbed.
        let n = 256;
        let cells = staircase_cells(n);
        let index = BandIndex::build(&cells);
        assert_eq!(index.band_count(), n);
        let wide = Rect::new(-1.0, 0.5, 11.0, n as f64 - 0.5).unwrap();
        let (got, stats) = index.answer_with_stats(&wide);
        let expect = linear_scan(&cells, &wide);
        assert!(
            (got - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
            "wide query: {got} vs {expect}"
        );
        assert_eq!(stats.bands_stabbed, 2, "only the rim bands may be stabbed");
        assert!(
            stats.nodes_absorbed >= 2,
            "interior bands must be absorbed through aggregate nodes"
        );
        // A query covering everything absorbs at the root: one visit.
        let all = Rect::new(-1.0, -1.0, 11.0, n as f64 + 1.0).unwrap();
        let (got, stats) = index.answer_with_stats(&all);
        assert!((got - index.total()).abs() <= 1e-9 * (1.0 + index.total().abs()));
        assert_eq!(stats.nodes_visited, 1);
        assert_eq!(stats.nodes_absorbed, 1);
        assert_eq!(stats.bands_stabbed, 0);
    }

    #[test]
    fn skip_list_scales_logarithmically_with_band_count() {
        // Quadrupling the band count must grow the visited-node count
        // by O(log) — a handful of extra tree levels — while the
        // stabbed-band count stays constant at the two rim bands.
        let mut visited_by_n = Vec::new();
        for n in [64usize, 256, 1024] {
            let cells = staircase_cells(n);
            let index = BandIndex::build(&cells);
            let wide = Rect::new(-1.0, 0.5, 11.0, n as f64 - 0.5).unwrap();
            let (got, stats) = index.answer_with_stats(&wide);
            let expect = linear_scan(&cells, &wide);
            assert!((got - expect).abs() <= 1e-9 * (1.0 + expect.abs()));
            assert_eq!(stats.bands_stabbed, 2, "n = {n}");
            let log2n = n.ilog2() as usize;
            assert!(
                stats.nodes_visited <= 6 * log2n,
                "n = {n}: visited {} nodes, want O(log n)",
                stats.nodes_visited
            );
            visited_by_n.push(stats.nodes_visited);
        }
        // Each 4x step in bands may add at most ~4 levels of the walk
        // (two root-to-rim paths, two levels per 4x).
        for w in visited_by_n.windows(2) {
            assert!(
                w[1] <= w[0] + 16,
                "visited counts {visited_by_n:?} grow super-logarithmically"
            );
        }
    }

    #[test]
    fn skip_list_matches_scan_on_adversarial_sets() {
        // The absorb path must stay faithful on irregular and
        // overlapping (non-partition) inputs, including queries whose
        // edges coincide with band and cell boundaries.
        let mut adversarial = staircase_cells(48);
        // Overlapping extras: break the disjointness invariant.
        adversarial.push((Rect::new(2.0, 3.0, 9.0, 11.5).unwrap(), 5.0));
        adversarial.push((Rect::new(1.0, 3.0, 4.0, 11.5).unwrap(), -3.0));
        for cells in [adaptive_cells(), adversarial] {
            let index = BandIndex::build(&cells);
            let bbox = cells
                .iter()
                .fold(None::<Rect>, |acc, (r, _)| {
                    Some(match acc {
                        None => *r,
                        Some(b) => Rect::new(
                            b.x0().min(r.x0()),
                            b.y0().min(r.y0()),
                            b.x1().max(r.x1()),
                            b.y1().max(r.y1()),
                        )
                        .unwrap(),
                    })
                })
                .unwrap();
            let (x0, y0, x1, y1) = (bbox.x0(), bbox.y0(), bbox.x1(), bbox.y1());
            let (w, h) = (bbox.width(), bbox.height());
            let wrapped = CellIndex::Bands(index);
            let mut queries = query_mix(&bbox);
            queries.extend([
                // Wide interiors hitting the absorb path.
                Rect::new(x0 - 1.0, y0 + 0.1 * h, x1 + 1.0, y1 - 0.1 * h).unwrap(),
                Rect::new(x0 + 0.05 * w, y0 - 1.0, x1 - 0.05 * w, y1 + 1.0).unwrap(),
                // Band-aligned edges: absorb boundaries exactly on y0/y1.
                Rect::new(x0, y0 + 1.0, x1, y1 - 1.0).unwrap(),
            ]);
            assert_matches_scan(&cells, &wrapped, &queries);
        }
    }

    #[test]
    fn axis_segment_weights_cover_interval() {
        let edges = vec![0.0, 1.0, 2.5, 2.5 + 1e-9, 7.0, 10.0];
        for (q0, q1) in [
            (0.0, 10.0),
            (0.5, 9.0),
            (1.2, 2.1),
            (2.5, 7.0),
            (-5.0, 50.0),
        ] {
            let segs = axis_segments(&edges, q0, q1);
            let covered: f64 = segs
                .iter()
                .flatten()
                .map(|&(a, b, w)| {
                    if b - a == 1 {
                        w * (edges[b] - edges[a])
                    } else {
                        edges[b] - edges[a]
                    }
                })
                .sum();
            let expect = (q1.min(10.0) - q0.max(0.0)).max(0.0);
            assert!(
                (covered - expect).abs() < 1e-9,
                "({q0},{q1}): covered {covered} expect {expect}"
            );
        }
    }
}
