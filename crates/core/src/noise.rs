//! Noise-source selection for the grid methods.
//!
//! The paper uses Laplace noise throughout. As an extension, the grid
//! methods can also release **integer** counts via the two-sided
//! geometric mechanism (Ghosh et al.), which is utility-optimal for
//! count queries and avoids publishing implausible fractional counts.
//! The choice does not affect the privacy analysis: both mechanisms are
//! ε-DP for sensitivity-1 counts.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_mech::{GeometricMechanism, LaplaceMechanism};

use crate::Result;

/// Which ε-DP noise distribution perturbs released counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoiseKind {
    /// Continuous Laplace noise `Lap(1/ε)` — the paper's choice.
    #[default]
    Laplace,
    /// Two-sided geometric (discrete Laplace) noise — integer outputs.
    Geometric,
}

/// A resolved noise source for sensitivity-1 counts at a given ε.
#[derive(Debug, Clone, Copy)]
pub enum CountNoise {
    /// Laplace mechanism.
    Laplace(LaplaceMechanism),
    /// Geometric mechanism.
    Geometric(GeometricMechanism),
}

impl CountNoise {
    /// Instantiates the noise source.
    pub fn new(kind: NoiseKind, epsilon: f64) -> Result<Self> {
        Ok(match kind {
            NoiseKind::Laplace => CountNoise::Laplace(LaplaceMechanism::for_count(epsilon)?),
            NoiseKind::Geometric => CountNoise::Geometric(GeometricMechanism::new(epsilon, 1)?),
        })
    }

    /// Perturbs one count.
    #[inline]
    pub fn randomize(&self, value: f64, rng: &mut impl Rng) -> f64 {
        match self {
            CountNoise::Laplace(m) => m.randomize(value, rng),
            CountNoise::Geometric(m) => m.randomize(value.round() as i64, rng) as f64,
        }
    }

    /// Perturbs a slice of counts in place.
    pub fn randomize_slice(&self, values: &mut [f64], rng: &mut impl Rng) {
        for v in values {
            *v = self.randomize(*v, rng);
        }
    }

    /// Standard deviation of the noise (for constrained-inference
    /// weights and error prediction).
    pub fn std_dev(&self) -> f64 {
        match self {
            CountNoise::Laplace(m) => m.noise_std_dev(),
            CountNoise::Geometric(m) => m.variance().sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn geometric_outputs_integers() {
        let noise = CountNoise::new(NoiseKind::Geometric, 1.0).unwrap();
        let mut r = rng(1);
        for _ in 0..100 {
            let v = noise.randomize(42.0, &mut r);
            assert_eq!(v, v.round(), "geometric release must be integral");
        }
    }

    #[test]
    fn laplace_outputs_continuous() {
        let noise = CountNoise::new(NoiseKind::Laplace, 1.0).unwrap();
        let mut r = rng(2);
        let v = noise.randomize(42.0, &mut r);
        assert_ne!(v, v.round()); // almost surely
    }

    #[test]
    fn std_dev_comparable_between_kinds() {
        // At the same ε the two mechanisms have similar noise scales
        // (geometric slightly tighter).
        let lap = CountNoise::new(NoiseKind::Laplace, 0.5).unwrap();
        let geo = CountNoise::new(NoiseKind::Geometric, 0.5).unwrap();
        assert!(geo.std_dev() < lap.std_dev());
        assert!(geo.std_dev() > lap.std_dev() * 0.5);
    }

    #[test]
    fn both_kinds_are_centered() {
        let mut r = rng(3);
        for kind in [NoiseKind::Laplace, NoiseKind::Geometric] {
            let noise = CountNoise::new(kind, 1.0).unwrap();
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| noise.randomize(100.0, &mut r)).sum::<f64>() / n as f64;
            assert!((mean - 100.0).abs() < 0.2, "{kind:?}: mean {mean}");
        }
    }

    #[test]
    fn invalid_epsilon_rejected() {
        assert!(CountNoise::new(NoiseKind::Laplace, 0.0).is_err());
        assert!(CountNoise::new(NoiseKind::Geometric, -1.0).is_err());
    }
}
