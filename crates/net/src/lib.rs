//! TCP transport for the dpgrid serving API.
//!
//! This crate is the first network layer over
//! [`dpgrid_serve::QueryService`]: a std-only TCP server
//! ([`TcpServer`], thread-per-connection, graceful shutdown) and a
//! blocking client ([`TcpClient`]), both speaking the versioned wire
//! protocol defined in [`dpgrid_serve::wire`]. It deliberately uses no
//! async runtime and no external networking dependencies — everything
//! is `std::net` + `std::thread`, consistent with the workspace's
//! vendored-stubs constraint, and the protocol layer is shared so an
//! async transport can later reuse it unchanged.
//!
//! # Frame format
//!
//! One frame per line, newline-delimited (`\n`; a trailing `\r` is
//! tolerated). Each line is a single JSON object:
//!
//! * request: `{"protocol_version": 1, "id": 7, "body": …}` — see
//!   [`dpgrid_serve::wire::WireRequest`]. `id` is a client-chosen
//!   correlation id echoed in the response (keep it within the JSON
//!   safe-integer range `0 ..= 2⁵³` — JSON numbers are doubles, so
//!   larger ids round in transit); `body` is externally
//!   tagged, one of
//!   `{"Query": {"release_key": "…", "rects": [{"x0":…,"y0":…,"x1":…,"y1":…}, …]}}`,
//!   `{"Batch": [query, …]}`, `"Stats"` or `"Ping"`.
//! * response: `{"protocol_version": 1, "id": 7, "body": …}` — see
//!   [`dpgrid_serve::wire::WireResponse`]; `body` is one of
//!   `{"Answers": …}`, `{"Batch": […]}`, `{"Stats": …}`, `"Pong"` or
//!   `{"Error": {"code": "…", "message": "…"}}`.
//!
//! JSON string escaping guarantees a frame never contains a raw
//! newline, so framing cannot desynchronise on content. Blank lines
//! are ignored (usable as keep-alives). Request frames are capped at
//! 16 MiB: a connection whose frame grows past the cap without a
//! newline is answered with a typed `MalformedRequest` error and
//! closed, so a newline-free stream cannot grow server memory
//! unboundedly. A frame that is not valid UTF-8 also gets a typed
//! `MalformedRequest` reply (the connection stays open).
//!
//! # Error codes
//!
//! Failures carry a stable machine-readable
//! [`dpgrid_serve::wire::ErrorCode`]:
//!
//! | code                 | meaning                                    | client action |
//! |----------------------|--------------------------------------------|---------------|
//! | `UnknownKey`         | release key not in the catalog             | fix the key / wait for publish |
//! | `InvalidQuery`       | NaN/infinite/inverted rectangle            | fix the query |
//! | `Overloaded`         | admission control shed the request         | back off, retry |
//! | `MalformedRequest`   | frame did not parse as this protocol       | fix the client |
//! | `UnsupportedVersion` | `protocol_version` mismatch                | upgrade one side |
//! | `Internal`           | server-side failure                        | report / retry |
//!
//! # Versioning policy
//!
//! `protocol_version` (currently
//! [`dpgrid_serve::wire::PROTOCOL_VERSION`] = 1) bumps on any
//! incompatible change; both peers reject other versions with
//! `UnsupportedVersion` rather than guessing. Additive request kinds
//! within a version decode as `MalformedRequest` on older servers,
//! which clients must treat as "feature unsupported". Error-code
//! *names* are append-only and never change meaning.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dpgrid_core::{Method, Pipeline};
//! use dpgrid_geo::generators::PaperDataset;
//! use dpgrid_geo::Rect;
//! use dpgrid_net::{TcpClient, TcpServer};
//! use dpgrid_serve::{Catalog, QueryEngine};
//!
//! // Publish a release and serve it.
//! let data = PaperDataset::Storage.generate_n(1, 2_000).unwrap();
//! let mut catalog = Catalog::new();
//! Pipeline::new(&data)
//!     .epsilon(1.0)
//!     .method(Method::ug(16))
//!     .seed(7)
//!     .publish_into(&mut catalog, "storage")
//!     .unwrap();
//! let engine = Arc::new(QueryEngine::new(catalog));
//! let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
//!
//! // Query it over loopback.
//! let mut client = TcpClient::connect(server.local_addr()).unwrap();
//! let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();
//! let response = client.query("storage", &[q]).unwrap();
//! assert_eq!(response.answers.len(), 1);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
mod server;

pub use client::TcpClient;
pub use error::{NetError, Result};
pub use server::TcpServer;

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_core::{Method, Pipeline};
    use dpgrid_geo::generators::PaperDataset;
    use dpgrid_geo::Rect;
    use dpgrid_serve::wire::ErrorCode;
    use dpgrid_serve::{Catalog, QueryEngine, QueryRequest};
    use std::sync::Arc;

    fn engine(keys: &[(&str, u64)]) -> QueryEngine {
        let ds = PaperDataset::Storage.generate_n(21, 1_500).unwrap();
        let mut catalog = Catalog::new();
        for (key, seed) in keys {
            Pipeline::new(&ds)
                .method(Method::ug(8))
                .seed(*seed)
                .publish_into(&mut catalog, *key)
                .unwrap();
        }
        QueryEngine::new(catalog)
    }

    #[test]
    fn roundtrip_query_stats_ping_over_loopback() {
        let engine = Arc::new(engine(&[("a", 1), ("b", 2)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(server.local_addr()).unwrap();

        client.ping().unwrap();
        let q = Rect::new(-120.0, 20.0, -90.0, 40.0).unwrap();
        let remote = client.query("a", &[q]).unwrap();
        let local = engine.answer(&QueryRequest::new("a", vec![q])).unwrap();
        assert_eq!(remote.answers, local.answers);
        assert_eq!(remote.version, 1);

        let outcomes = client
            .query_batch(&[
                QueryRequest::new("b", vec![q]),
                QueryRequest::new("nope", vec![q]),
            ])
            .unwrap();
        assert!(outcomes[0].is_ok());
        assert!(matches!(&outcomes[1], Err(e) if e.code == ErrorCode::UnknownKey));

        let stats = client.stats().unwrap();
        assert!(stats.requests >= 3);
        assert_eq!(stats.catalog.releases, 2);
        assert!(server.frames_served() >= 4);
        server.shutdown();
    }

    #[test]
    fn server_shuts_down_with_idle_connections_open() {
        let engine = Arc::new(engine(&[("a", 1)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        // Two idle connections that never send a byte must not block
        // the graceful shutdown.
        let _idle1 = TcpClient::connect(server.local_addr()).unwrap();
        let _idle2 = TcpClient::connect(server.local_addr()).unwrap();
        server.shutdown();
    }

    #[test]
    fn unattributed_server_errors_surface_typed_not_as_id_mismatch() {
        // A server that cannot attribute a frame replies under id 0
        // (e.g. the 16 MiB frame-cap rejection); the client must
        // surface the typed error, not a confusing id-mismatch
        // protocol error. Simulated with a one-shot fake server.
        use dpgrid_serve::wire::{ErrorCode, WireError, WireResponse};
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let frame = WireResponse::error(
                0,
                WireError::new(ErrorCode::MalformedRequest, "frame exceeds the cap"),
            )
            .encode();
            stream.write_all(frame.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        });
        let mut client = TcpClient::connect(addr).unwrap();
        match client.ping() {
            Err(NetError::Server(e)) => assert_eq!(e.code, ErrorCode::MalformedRequest),
            other => panic!("expected typed server error, got {other:?}"),
        }
        fake.join().unwrap();
    }

    #[test]
    fn stats_reconcile_out_of_band_compiles_into_the_budget() {
        // Compiling through the with_catalog escape hatch on an
        // otherwise idle engine must show up (and be bounded) on the
        // very next stats read — not only after future query traffic.
        use dpgrid_geo::Synopsis as _;
        let engine = Arc::new(engine(&[("a", 1), ("b", 2)]));
        let q = Rect::new(-120.0, 20.0, -90.0, 40.0).unwrap();
        engine.with_catalog(|catalog| {
            for key in ["a", "b"] {
                catalog.release(key).unwrap().answer(&q);
            }
        });
        let stats = dpgrid_serve::QueryService::stats(&*engine);
        assert!(stats.catalog.resident_bytes > 0, "sweep accounted bytes");
        assert_eq!(stats.catalog.warm, 2);
        assert!(stats.catalog.resident_bytes <= stats.catalog.budget_bytes);
    }

    #[test]
    fn disconnect_is_reported_after_shutdown() {
        let engine = Arc::new(engine(&[("a", 1)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        server.shutdown();
        // The next call fails with a transport error, not a hang.
        let err = client.ping().unwrap_err();
        assert!(matches!(err, NetError::Disconnected | NetError::Io(_)));
    }
}
