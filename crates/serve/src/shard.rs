//! The sharded serving tier: route one keyspace over many engines.
//!
//! A single [`QueryEngine`] scales until one host's cores or memory
//! run out; the serving problem after that is *horizontal* — split the
//! release keyspace over several engines (in this process or across
//! hosts) and route every query to the engine that owns its key. This
//! module is that tier:
//!
//! * [`Shard`] — the backend seam: a [`QueryService`] that can also
//!   say which keys it holds ([`Shard::contains_key`], plus the
//!   advertised keyspace from [`QueryService::keys`]). Implemented by
//!   [`LocalShard`] (an in-process [`QueryEngine`]) and by
//!   `dpgrid-net`'s `RemoteShard` (an engine on another host behind a
//!   TCP connection pool) — a router mixes both transparently.
//! * [`ShardRouter`] — the router. It implements [`QueryService`]
//!   itself, so everything built against the service seam (the wire
//!   protocol, the TCP server, another router) serves a whole shard
//!   fleet unchanged: bind a `TcpServer` to a router and you have a
//!   front-door node proxying N backends.
//!
//! # Placement
//!
//! Routing is deterministic **rendezvous hashing** over shard *names*
//! ([`dpgrid_core::rendezvous_route`]): no coordination, no lookup
//! table, identical in every process that agrees on the names. The
//! publishing side places releases with the same function via
//! [`dpgrid_core::ShardedSink`], so build → publish → route agree by
//! construction — name the sink shards exactly like the router shards
//! and a published key is always found where the router looks.
//! Topology changes are minimally disruptive: removing one of `k`
//! shards remaps exactly the keys it owned (~1/k), adding one steals
//! only the keys it now wins.
//!
//! # Batches, errors, stats
//!
//! [`ShardRouter::answer_batch`] scatter–gathers: a mixed-key batch is
//! split per owning shard, sub-batches run concurrently (scoped
//! threads, one per shard touched), and responses are reassembled in
//! request order. Failures stay isolated exactly as in the engine's
//! contract — one shard shedding [`ServeError::Overloaded`] (or being
//! unreachable: [`ServeError::Unavailable`]) fails only the requests
//! routed to it. [`QueryService::stats`] merges every shard's
//! [`EngineStats`] into the exact aggregate ([`EngineStats::merge`]);
//! [`ShardRouter::router_stats`] keeps the per-shard breakdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use dpgrid_core::rendezvous_route;
use serde::{Deserialize, Serialize};

use crate::engine::{EngineStats, QueryEngine, QueryRequest, QueryResponse};
use crate::error::{Result, ServeError};
use crate::service::QueryService;

/// A routable serving backend: a [`QueryService`] that can also answer
/// placement questions about its keyspace.
///
/// The router only *routes* by rendezvous hash — it never scans shards
/// for a key — so `contains_key` is diagnostic surface: placement
/// verification, health checks, operator tooling. The default
/// implementation scans the advertised keyspace; backends with an
/// O(1) membership test (the local engine) override it.
pub trait Shard: QueryService {
    /// Whether this shard currently holds `key`.
    fn contains_key(&self, key: &str) -> bool {
        self.keys().iter().any(|k| k == key)
    }
}

/// Forwarding impl so `Arc<LocalShard>`, `Arc<dyn Shard>` (and any
/// other shared handle) are themselves shards.
impl<S: Shard + ?Sized> Shard for Arc<S> {
    fn contains_key(&self, key: &str) -> bool {
        (**self).contains_key(key)
    }
}

/// An in-process shard: a [`QueryEngine`] served directly, no wire.
///
/// The cheapest backend a router can hold — sub-batches routed here
/// are answered on the router's own scatter threads. Mixing
/// `LocalShard`s with remote ones is the natural migration path: start
/// with every shard local, move hot shards to their own hosts later
/// without touching routing (placement follows the *names*).
#[derive(Debug, Clone)]
pub struct LocalShard {
    engine: Arc<QueryEngine>,
}

impl LocalShard {
    /// Wraps a shared engine as a routable shard.
    pub fn new(engine: Arc<QueryEngine>) -> Self {
        LocalShard { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }
}

impl QueryService for LocalShard {
    fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        self.engine.answer_batch(requests)
    }

    fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    fn keys(&self) -> Vec<String> {
        self.engine.keys()
    }
}

impl Shard for LocalShard {
    fn contains_key(&self, key: &str) -> bool {
        self.engine.with_catalog(|catalog| catalog.contains(key))
    }
}

/// Local shards accept published releases (the engine's interior
/// locking makes `&self` inserts safe), so a
/// [`dpgrid_core::ShardedSink`] over `LocalShard`s fans a pipeline's
/// output across the very engines a router serves from — publish into
/// the shard, serve from the shard, one placement.
impl dpgrid_core::ReleaseSink for LocalShard {
    fn accept_release(&mut self, key: String, release: dpgrid_core::Release) {
        self.engine.insert(key, release);
    }

    /// Evicts from the wrapped engine's catalog — so a compactor
    /// publishing through a `ShardedSink` of `LocalShard`s retires
    /// expired epochs from the same engines a router serves from.
    fn evict_release(&mut self, key: &str) -> bool {
        self.engine
            .with_catalog(|catalog| catalog.remove(key).is_some())
    }
}

/// One registered shard plus the router's per-shard traffic counters.
struct ShardSlot {
    name: String,
    shard: Arc<dyn Shard>,
    /// Requests the router dispatched to this shard.
    routed: AtomicU64,
    /// Of those, how many came back as errors (typed failures and
    /// unreachable-shard substitutions alike).
    failed: AtomicU64,
}

impl std::fmt::Debug for ShardSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSlot")
            .field("name", &self.name)
            .field("routed", &self.routed)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

/// Per-shard traffic breakdown inside [`RouterStats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// The shard's router-registered name (the rendezvous identity).
    pub name: String,
    /// Requests the router dispatched to this shard since it was
    /// added.
    pub routed: u64,
    /// Dispatched requests that failed (shard-typed errors and
    /// unreachability).
    pub failed: u64,
    /// The shard's own engine counters (zeroed when the shard is
    /// currently unreachable).
    pub engine: EngineStats,
}

/// A point-in-time view of a router: per-shard breakdown plus the
/// merged aggregate the router reports through [`QueryService::stats`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterStats {
    /// One entry per registered shard, in registration order.
    pub shards: Vec<ShardStats>,
    /// The exact element-wise sum of every shard's engine stats.
    pub merged: EngineStats,
}

/// Routes one keyspace over many shards — local, remote, or a mix.
///
/// ```
/// use std::sync::Arc;
/// use dpgrid_core::{Method, Pipeline, ShardedSink};
/// use dpgrid_geo::generators::PaperDataset;
/// use dpgrid_geo::Rect;
/// use dpgrid_serve::shard::{LocalShard, ShardRouter};
/// use dpgrid_serve::{Catalog, QueryEngine, QueryRequest, QueryService};
///
/// // Two engines, one keyspace: publish through a ShardedSink named
/// // like the router's shards, so placement and routing agree.
/// let engines: Vec<Arc<QueryEngine>> = (0..2)
///     .map(|_| Arc::new(QueryEngine::new(Catalog::new())))
///     .collect();
/// let mut sink = ShardedSink::new(vec![
///     ("a".to_string(), LocalShard::new(engines[0].clone())),
///     ("b".to_string(), LocalShard::new(engines[1].clone())),
/// ]);
/// let dataset = PaperDataset::Storage.generate_n(1, 1_500).unwrap();
/// for key in ["k1", "k2", "k3"] {
///     Pipeline::new(&dataset)
///         .method(Method::ug(8))
///         .seed(7)
///         .publish_into(&mut sink, key)
///         .unwrap();
/// }
///
/// let router = ShardRouter::new();
/// router.add_shard("a", LocalShard::new(engines[0].clone())).unwrap();
/// router.add_shard("b", LocalShard::new(engines[1].clone())).unwrap();
///
/// let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();
/// let responses = router.answer_batch(&[
///     QueryRequest::new("k1", vec![q]),
///     QueryRequest::new("k2", vec![q]),
///     QueryRequest::new("k3", vec![q]),
/// ]);
/// assert!(responses.iter().all(|r| r.is_ok()));
/// assert_eq!(router.keys(), vec!["k1", "k2", "k3"]);
/// ```
#[derive(Debug, Default)]
pub struct ShardRouter {
    /// Registration-ordered slots. Reads snapshot the `Arc`s and drop
    /// the guard before any shard work, so topology updates never wait
    /// on slow backends.
    shards: RwLock<Vec<Arc<ShardSlot>>>,
}

impl ShardRouter {
    /// An empty router. Until a shard is added, every request fails
    /// with [`ServeError::Unavailable`].
    pub fn new() -> Self {
        ShardRouter::default()
    }

    /// A router over `shards` (name, backend) pairs.
    pub fn with_shards<S, I>(shards: I) -> Result<Self>
    where
        S: Shard + 'static,
        I: IntoIterator<Item = (String, S)>,
    {
        let router = ShardRouter::new();
        for (name, shard) in shards {
            router.add_shard(name, shard)?;
        }
        Ok(router)
    }

    /// Registers `shard` under `name` — the name is the shard's
    /// rendezvous identity, so it must match the name the publishing
    /// side used in its [`dpgrid_core::ShardedSink`]. Only the keys
    /// the new shard wins remap; everything else keeps its placement.
    ///
    /// Fails with [`ServeError::InvalidKey`] on a duplicate name
    /// (two shards under one name would split one rendezvous identity
    /// nondeterministically).
    pub fn add_shard<S: Shard + 'static>(&self, name: impl Into<String>, shard: S) -> Result<()> {
        let name = name.into();
        let mut shards = self.write();
        if shards.iter().any(|slot| slot.name == name) {
            return Err(ServeError::InvalidKey(format!(
                "shard name `{name}` is already registered"
            )));
        }
        shards.push(Arc::new(ShardSlot {
            name,
            shard: Arc::new(shard),
            routed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }));
        Ok(())
    }

    /// Deregisters the shard under `name`, returning whether it was
    /// present. Only the removed shard's keys remap (each to its new
    /// rendezvous winner); a key whose releases lived *only* on the
    /// removed shard then fails typed (`UnknownKey`) at its new home —
    /// the router routes placement, it does not migrate data.
    pub fn remove_shard(&self, name: &str) -> bool {
        let mut shards = self.write();
        let before = shards.len();
        shards.retain(|slot| slot.name != name);
        shards.len() < before
    }

    /// The registered shard names, in registration order.
    pub fn shard_names(&self) -> Vec<String> {
        self.read().iter().map(|s| s.name.clone()).collect()
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether the router has no shards.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// Name of the shard that owns `key` under the current topology
    /// (`None` on an empty router).
    pub fn route(&self, key: &str) -> Option<String> {
        let shards = self.read();
        let names: Vec<&str> = shards.iter().map(|s| s.name.as_str()).collect();
        rendezvous_route(&names, key).map(|i| shards[i].name.clone())
    }

    /// Per-shard traffic breakdown plus the merged aggregate. Remote
    /// shards are polled for their stats; an unreachable one reports
    /// zeroed engine counters (its `routed`/`failed` counters are the
    /// router's own and stay exact).
    pub fn router_stats(&self) -> RouterStats {
        let slots = self.snapshot();
        let engines = poll_shards(&slots, |slot| slot.shard.stats());
        let shards: Vec<ShardStats> = slots
            .iter()
            .zip(engines)
            .map(|(slot, engine)| ShardStats {
                name: slot.name.clone(),
                routed: slot.routed.load(Ordering::Relaxed),
                failed: slot.failed.load(Ordering::Relaxed),
                engine,
            })
            .collect();
        let merged = shards.iter().map(|s| &s.engine).sum();
        RouterStats { shards, merged }
    }

    /// Dispatches one sub-batch to its shard, keeping the router's
    /// per-shard counters and the one-result-per-request contract: a
    /// misbehaving backend that returns the wrong count is clamped
    /// (extras dropped, deficits filled with typed
    /// [`ServeError::Unavailable`]) so reassembly can never mismatch
    /// answers to requests.
    fn dispatch(slot: &ShardSlot, sub: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        slot.routed.fetch_add(sub.len() as u64, Ordering::Relaxed);
        let mut results = slot.shard.answer_batch(sub);
        results.truncate(sub.len());
        while results.len() < sub.len() {
            results.push(Err(ServeError::Unavailable {
                shard: slot.name.clone(),
                reason: "shard returned too few responses".into(),
            }));
        }
        let failed = results.iter().filter(|r| r.is_err()).count() as u64;
        slot.failed.fetch_add(failed, Ordering::Relaxed);
        results
    }

    /// Current slots, snapshotted so shard work runs without the lock.
    fn snapshot(&self) -> Vec<Arc<ShardSlot>> {
        self.read().clone()
    }

    fn read(&self) -> RwLockReadGuard<'_, Vec<Arc<ShardSlot>>> {
        self.shards
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, Vec<Arc<ShardSlot>>> {
        self.shards
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl QueryService for ShardRouter {
    /// Scatter–gather over the owning shards: requests are bucketed by
    /// rendezvous placement, each touched shard answers its sub-batch
    /// on its own scoped thread (remote shards overlap their network
    /// round trips this way), and results reassemble in request order.
    /// Failures are per-request, exactly as the engine isolates them.
    fn answer_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse>> {
        let slots = self.snapshot();
        if slots.is_empty() {
            return requests
                .iter()
                .map(|_| {
                    Err(ServeError::Unavailable {
                        shard: "<none>".into(),
                        reason: "router has no shards".into(),
                    })
                })
                .collect();
        }
        let names: Vec<&str> = slots.iter().map(|s| s.name.as_str()).collect();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
        for (i, request) in requests.iter().enumerate() {
            let owner = rendezvous_route(&names, &request.release_key).expect("router has shards");
            buckets[owner].push(i);
        }
        let mut out: Vec<Option<Result<QueryResponse>>> = requests.iter().map(|_| None).collect();
        let touched: Vec<(&Arc<ShardSlot>, &Vec<usize>)> = slots
            .iter()
            .zip(&buckets)
            .filter(|(_, bucket)| !bucket.is_empty())
            .collect();
        if touched.len() <= 1 {
            // One shard (or an empty batch): answer inline, no threads.
            for (slot, bucket) in touched {
                let sub: Vec<QueryRequest> = bucket.iter().map(|&i| requests[i].clone()).collect();
                for (&i, result) in bucket.iter().zip(Self::dispatch(slot, &sub)) {
                    out[i] = Some(result);
                }
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = touched
                    .iter()
                    .map(|(slot, bucket)| {
                        scope.spawn(move || {
                            let sub: Vec<QueryRequest> =
                                bucket.iter().map(|&i| requests[i].clone()).collect();
                            Self::dispatch(slot, &sub)
                        })
                    })
                    .collect();
                for ((_, bucket), handle) in touched.iter().zip(handles) {
                    let results = handle.join().expect("shard dispatch panicked");
                    for (&i, result) in bucket.iter().zip(results) {
                        out[i] = Some(result);
                    }
                }
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("every request was bucketed exactly once"))
            .collect()
    }

    /// The exact merged counters of every shard (see
    /// [`EngineStats::merge`]), polled concurrently; an unreachable
    /// remote contributes zeroes. Use [`ShardRouter::router_stats`]
    /// for the per-shard breakdown.
    fn stats(&self) -> EngineStats {
        poll_shards(&self.snapshot(), |slot| slot.shard.stats())
            .into_iter()
            .sum()
    }

    /// The union of every shard's advertised keys (polled
    /// concurrently), sorted and deduped.
    fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = poll_shards(&self.snapshot(), |slot| slot.shard.keys())
            .into_iter()
            .flatten()
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// Runs `f` against every slot, concurrently when there is more than
/// one — a shard may be on the far side of a wire, and one slow or
/// unreachable backend must not serialise polling the rest (the
/// scatter path in `answer_batch` already works this way).
fn poll_shards<T: Send>(
    slots: &[Arc<ShardSlot>],
    f: impl Fn(&ShardSlot) -> T + Send + Sync,
) -> Vec<T> {
    if slots.len() <= 1 {
        return slots.iter().map(|slot| f(slot)).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .iter()
            .map(|slot| scope.spawn(move || f(slot)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard poll panicked"))
            .collect()
    })
}

/// Routers are shards themselves: `contains_key` asks the rendezvous
/// winner (a placement-faithful check — "is the key where this
/// topology says it belongs"), which also lets routers nest into
/// routing trees.
impl Shard for ShardRouter {
    fn contains_key(&self, key: &str) -> bool {
        let slots = self.snapshot();
        let names: Vec<&str> = slots.iter().map(|s| s.name.as_str()).collect();
        match rendezvous_route(&names, key) {
            Some(owner) => slots[owner].shard.contains_key(key),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Catalog;
    use dpgrid_core::{Method, Pipeline, ShardedSink};
    use dpgrid_geo::generators::PaperDataset;
    use dpgrid_geo::Rect;

    fn rects(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n.max(1) as f64;
                Rect::new(-125.0 + 20.0 * t, 12.0 + 15.0 * t, -85.0, 45.0).unwrap()
            })
            .collect()
    }

    /// Publishes `keys` into (a) one reference engine holding all of
    /// them and (b) `shard_names.len()` sharded engines placed by a
    /// `ShardedSink`, returning the reference plus a router over local
    /// shards that agree with the sink's placement.
    fn reference_and_router(
        keys: &[String],
        shard_names: &[&str],
    ) -> (QueryEngine, ShardRouter, Vec<Arc<QueryEngine>>) {
        let dataset = PaperDataset::Storage.generate_n(5, 2_000).unwrap();
        let mut reference = Catalog::new();
        let engines: Vec<Arc<QueryEngine>> = shard_names
            .iter()
            .map(|_| Arc::new(QueryEngine::new(Catalog::new())))
            .collect();
        let mut sink = ShardedSink::new(
            shard_names
                .iter()
                .zip(&engines)
                .map(|(name, engine)| (name.to_string(), LocalShard::new(Arc::clone(engine))))
                .collect(),
        );
        for (i, key) in keys.iter().enumerate() {
            let pipeline = Pipeline::new(&dataset)
                .method(Method::ug(8 + (i % 3) * 4))
                .seed(i as u64);
            pipeline.publish_into(&mut reference, key.clone()).unwrap();
            pipeline.publish_into(&mut sink, key.clone()).unwrap();
        }
        let router = ShardRouter::with_shards(
            shard_names
                .iter()
                .zip(&engines)
                .map(|(name, engine)| (name.to_string(), LocalShard::new(Arc::clone(engine)))),
        )
        .unwrap();
        (QueryEngine::new(reference), router, engines)
    }

    #[test]
    fn mixed_batches_match_the_unsharded_engine_in_order() {
        let keys: Vec<String> = (0..9).map(|i| format!("r{i}")).collect();
        let (reference, router, _) = reference_and_router(&keys, &["s0", "s1", "s2"]);
        // A mixed-key batch, some keys repeated, plus one unknown.
        let mut batch: Vec<QueryRequest> = keys
            .iter()
            .chain(keys.iter().take(3))
            .map(|k| QueryRequest::new(k.clone(), rects(4)))
            .collect();
        batch.insert(5, QueryRequest::new("missing", rects(2)));
        let expected = reference.answer_batch(&batch);
        let routed = router.answer_batch(&batch);
        assert_eq!(routed.len(), expected.len());
        for (i, (r, e)) in routed.iter().zip(&expected).enumerate() {
            match (r, e) {
                (Ok(r), Ok(e)) => {
                    assert_eq!(r.release_key, batch[i].release_key);
                    assert_eq!(r.release_key, e.release_key);
                    assert_eq!(r.answers, e.answers, "request #{i} diverged");
                }
                (Err(ServeError::UnknownRelease(k)), Err(ServeError::UnknownRelease(k2))) => {
                    assert_eq!(k, k2);
                    assert_eq!(k, "missing");
                }
                other => panic!("request #{i}: mismatched outcomes {other:?}"),
            }
        }
        // The union keyspace is the reference keyspace.
        assert_eq!(router.keys(), reference.keys());
    }

    #[test]
    fn placement_agrees_with_sharded_sink_and_contains_key() {
        let keys: Vec<String> = (0..16).map(|i| format!("key-{i}")).collect();
        let (_, router, engines) = reference_and_router(&keys, &["s0", "s1", "s2", "s3"]);
        let mut non_empty = 0;
        for key in &keys {
            // The router's placement points at a shard that really
            // holds the key (build → publish → route agree).
            assert!(router.contains_key(key), "{key} not where routed");
            let owner = router.route(key).unwrap();
            let owner_idx = ["s0", "s1", "s2", "s3"]
                .iter()
                .position(|n| *n == owner)
                .unwrap();
            assert!(engines[owner_idx].with_catalog(|c| c.contains(key)));
        }
        for engine in &engines {
            non_empty += usize::from(!engine.keys().is_empty());
        }
        assert!(non_empty >= 2, "16 keys should spread over 4 shards");
        assert!(!router.contains_key("never-published"));
    }

    #[test]
    fn one_overloaded_shard_fails_only_its_sub_batch() {
        let keys: Vec<String> = (0..8).map(|i| format!("r{i}")).collect();
        let (_, router, engines) = reference_and_router(&keys, &["s0", "s1"]);
        // Choke shard s1: any request with >1 rect sheds there.
        let choked: Vec<String> = keys
            .iter()
            .filter(|k| router.route(k).as_deref() == Some("s1"))
            .cloned()
            .collect();
        assert!(!choked.is_empty(), "some keys must land on s1");
        assert!(choked.len() < keys.len(), "some keys must land on s0");
        // Rebuild the router with an admission-choked s1. (Engines are
        // shared; the router is cheap to reconstruct.)
        let choked_engine = Arc::new(QueryEngine::new(Catalog::new()).with_admission_limit(1));
        let dataset = PaperDataset::Storage.generate_n(5, 2_000).unwrap();
        let mut sink = LocalShard::new(Arc::clone(&choked_engine));
        for key in &choked {
            Pipeline::new(&dataset)
                .method(Method::ug(8))
                .seed(1)
                .publish_into(&mut sink, key.clone())
                .unwrap();
        }
        let router = ShardRouter::new();
        router
            .add_shard("s0", LocalShard::new(Arc::clone(&engines[0])))
            .unwrap();
        router
            .add_shard("s1", LocalShard::new(choked_engine))
            .unwrap();
        let batch: Vec<QueryRequest> = keys
            .iter()
            .map(|k| QueryRequest::new(k.clone(), rects(3)))
            .collect();
        let results = router.answer_batch(&batch);
        for (req, result) in batch.iter().zip(&results) {
            if choked.contains(&req.release_key) {
                assert!(
                    matches!(result, Err(ServeError::Overloaded { .. })),
                    "{}: expected Overloaded, got {result:?}",
                    req.release_key
                );
            } else {
                assert!(result.is_ok(), "{}: {result:?}", req.release_key);
            }
        }
        let stats = router.router_stats();
        let s1 = stats.shards.iter().find(|s| s.name == "s1").unwrap();
        assert_eq!(s1.failed, choked.len() as u64);
        assert_eq!(s1.routed, choked.len() as u64);
        let s0 = stats.shards.iter().find(|s| s.name == "s0").unwrap();
        assert_eq!(s0.failed, 0);
        assert_eq!(s0.routed, (keys.len() - choked.len()) as u64);
    }

    #[test]
    fn merged_stats_are_the_exact_sum_of_the_shards() {
        let keys: Vec<String> = (0..6).map(|i| format!("r{i}")).collect();
        let (_, router, engines) = reference_and_router(&keys, &["s0", "s1", "s2"]);
        let batch: Vec<QueryRequest> = keys
            .iter()
            .map(|k| QueryRequest::new(k.clone(), rects(2)))
            .collect();
        for result in router.answer_batch(&batch) {
            result.unwrap();
        }
        let merged = router.stats();
        let by_hand: EngineStats = engines.iter().map(|e| e.stats()).sum();
        assert_eq!(merged, by_hand);
        assert_eq!(merged.requests, keys.len() as u64);
        assert_eq!(merged.answers, (keys.len() * 2) as u64);
        // The aggregate admission budget is the sum of the members'.
        assert_eq!(
            merged.admission_limit,
            engines.iter().map(|e| e.admission_limit() as u64).sum()
        );
        let router_stats = router.router_stats();
        assert_eq!(router_stats.merged, merged);
        assert_eq!(
            router_stats.shards.iter().map(|s| s.routed).sum::<u64>(),
            keys.len() as u64
        );
    }

    #[test]
    fn topology_updates_remap_only_the_moved_keys() {
        let keys: Vec<String> = (0..64).map(|i| format!("topo-{i}")).collect();
        let (_, router, _) = reference_and_router(&keys, &["s0", "s1", "s2", "s3"]);
        let before: Vec<(String, String)> = keys
            .iter()
            .map(|k| (k.clone(), router.route(k).unwrap()))
            .collect();
        assert!(router.remove_shard("s2"));
        assert!(!router.remove_shard("s2"), "second removal is a no-op");
        let mut moved = 0;
        for (key, owner) in &before {
            let after = router.route(key).unwrap();
            if owner == "s2" {
                assert_ne!(&after, "s2");
                moved += 1;
            } else {
                assert_eq!(&after, owner, "{key} moved although its shard survived");
            }
        }
        assert!(moved > 0, "s2 owned some keys");
        assert!(
            moved <= keys.len() / 2,
            "removing 1 of 4 shards moved {moved}/{} keys",
            keys.len()
        );
        // Adding it back restores the original placement exactly.
        let engine = Arc::new(QueryEngine::new(Catalog::new()));
        router.add_shard("s2", LocalShard::new(engine)).unwrap();
        for (key, owner) in &before {
            assert_eq!(&router.route(key).unwrap(), owner);
        }
        // Duplicate names are rejected.
        let dup = Arc::new(QueryEngine::new(Catalog::new()));
        assert!(matches!(
            router.add_shard("s2", LocalShard::new(dup)),
            Err(ServeError::InvalidKey(_))
        ));
    }

    #[test]
    fn empty_router_fails_typed_not_panicking() {
        let router = ShardRouter::new();
        assert!(router.is_empty());
        assert_eq!(router.len(), 0);
        assert_eq!(router.route("k"), None);
        let results = router.answer_batch(&[QueryRequest::new("k", rects(1))]);
        assert!(matches!(results[0], Err(ServeError::Unavailable { .. })));
        assert_eq!(router.stats(), EngineStats::zeroed());
        assert!(router.keys().is_empty());
    }
}
