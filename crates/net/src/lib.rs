//! TCP transport for the dpgrid serving API.
//!
//! This crate is the network layer over
//! [`dpgrid_serve::QueryService`]: a std-only TCP server
//! ([`TcpServer`] — readiness-multiplexed by default, with a
//! thread-per-connection mode, graceful shutdown either way), a
//! blocking client ([`TcpClient`], with one-shot reconnection and
//! request pipelining), a reconnecting connection pool
//! ([`TcpClientPool`]), the remote leg of the sharded serving tier
//! ([`RemoteShard`]) and the write-path fan-out for LDP report
//! ingestion ([`ReportRouter`]) — all speaking the versioned wire
//! protocol
//! defined in [`dpgrid_serve::wire`], negotiating its binary v2 codec
//! per connection and falling back to JSON v1 against old peers. It
//! deliberately uses no async runtime and no external networking
//! dependencies — everything is `std::net` + `std::thread` plus a thin
//! readiness shim over the platform's `epoll`/`poll(2)`, consistent
//! with the workspace's vendored-stubs constraint, and the protocol
//! layer is shared so an async transport can later reuse it unchanged.
//!
//! # Transport architecture
//!
//! The server side is split along three seams, each swappable without
//! touching the others:
//!
//! * **Poller** ([`poll`] module): "which registered file descriptors
//!   are ready for what" and nothing else. A small trait (`register` /
//!   `reregister` / `deregister` / `wait`) with two implementations —
//!   `epoll(7)` on Linux, portable `poll(2)` elsewhere — selected at
//!   runtime, level-triggered in both cases. The poller knows nothing
//!   about connections, protocols, or threads.
//! * **Run loop** ([`mux`] module): ownership and scheduling. A small
//!   shared-nothing worker pool — each worker owns one poller, one
//!   slab of connections, and one wake pipe; worker 0 also owns the
//!   (nonblocking) listener and hands accepted sockets round-robin to
//!   its peers through an injection queue plus a wake byte. No
//!   connection is ever touched by two threads, so connection state
//!   needs no locks. The run loop knows nothing about frame formats.
//! * **Dispatch** (the private `conn` module): one nonblocking state
//!   machine per
//!   connection — handshake (JSON until a `Hello` negotiates v2),
//!   partial-frame reassembly for both codecs, protocol dispatch
//!   through the same `dpgrid_serve::wire` entry points the threaded
//!   transport uses, and a write queue drained with vectored writes.
//!
//! A future async-runtime backend is a third implementation of the
//! middle seam: it would replace the worker pool and poller with an
//! executor and reuse the per-connection state machines and the
//! protocol layer unchanged.
//!
//! **Backpressure** is two-layered. The engine's admission control is
//! global: an overloaded engine sheds work with typed `Overloaded`
//! frames regardless of transport. The multiplexed transport adds a
//! per-connection layer: each connection's outbound queue has a 1 MiB
//! soft high-water mark, and a connection whose client stops reading
//! its responses is *paused* — its buffered input stops being
//! dispatched and its read interest is dropped, so the kernel receive
//! window fills and the sender stalls at its own socket. Writing
//! resumes as the queue drains below the low-water mark. A paused or
//! slow connection therefore costs one bounded buffer, never unbounded
//! server memory, and never blocks a worker thread (stalls are visible
//! as `read_stalls`/`write_stalls` in [`dpgrid_serve::TransportStats`],
//! which every `Stats` response carries).
//!
//! **Choosing a mode** ([`ServerMode`]): the multiplexed default holds
//! thousands of mostly-idle connections at ~zero per-tick cost and
//! degrades gracefully under slow readers; prefer it everywhere real.
//! The threaded mode spends an OS thread (stack, scheduler slot,
//! 100 ms shutdown-poll tick) per connection but has the simplest
//! imaginable control flow; it remains as the reference implementation
//! the multiplexed transport is differentially tested against, and as
//! the baseline in `benches/net_throughput`.
//!
//! # Deployment topologies
//!
//! Every box below is the same binary; what changes is which
//! [`dpgrid_serve::QueryService`] the [`TcpServer`] is bound to.
//!
//! * **Single node** — one [`dpgrid_serve::QueryEngine`] behind one
//!   [`TcpServer`]. Clients connect directly; scaling is vertical
//!   (cores, catalog memory budget). This is `examples/net_roundtrip`.
//! * **Front-door router** — one node binds its `TcpServer` to a
//!   [`dpgrid_serve::ShardRouter`] whose shards are [`RemoteShard`]s
//!   dialing N backend nodes (each a plain single node). Clients speak
//!   to the front door exactly as to a single node — the router *is* a
//!   `QueryService` — while mixed-key batches scatter over the
//!   backends and reassemble in order. Placement is deterministic
//!   rendezvous hashing over shard names
//!   (`dpgrid_core::rendezvous_route`), the same function the
//!   publishing side uses via `dpgrid_core::ShardedSink`, so a
//!   release published to "shard-b" is always routed to "shard-b".
//! * **Mixed local/remote** — the router holds some shards in-process
//!   ([`dpgrid_serve::LocalShard`]) and some remote. This is the
//!   migration path: start with every shard local on one host, then
//!   move hot shards to their own hosts by swapping `LocalShard` for
//!   [`RemoteShard`] under the *same name* — no key moves, because
//!   placement follows names, not transports. This is
//!   `examples/sharded_serving`.
//! * **LDP ingestion front door** — a backend node binds its server to
//!   a `dpgrid_ldp::CollectingService` wrapping its engine, so the
//!   same connections that answer queries absorb `Report` frames into
//!   a per-epoch collector; sealed epochs publish straight into the
//!   engine it wraps. With several such backends, a [`ReportRouter`]
//!   on the client side scatters each batch to the shard that owns its
//!   epoch key under the *same* rendezvous placement the read side
//!   uses — reports for an epoch aggregate on the node that will serve
//!   its sealed release, with no cross-shard merge. This is
//!   `examples/ldp_ingestion`.
//!
//! Failure semantics across all three: a dead backend fails only the
//! requests routed to it (typed `Internal`/`Unavailable`), an
//! overloaded backend sheds its sub-batch with `Overloaded`, and
//! clients/pools redial stale connections once before surfacing
//! errors.
//!
//! # Frame formats
//!
//! Two codecs share one request/response vocabulary (the types in
//! [`dpgrid_serve::wire`]); which one a connection speaks is decided
//! once, at connect time (see *Versioning and negotiation* below).
//!
//! ## JSON v1 (the bootstrap codec)
//!
//! One frame per line, newline-delimited (`\n`; a trailing `\r` is
//! tolerated). Each line is a single JSON object:
//!
//! * request: `{"protocol_version": 1, "id": 7, "body": …}` — see
//!   [`dpgrid_serve::wire::WireRequest`]. `id` is a client-chosen
//!   correlation id echoed in the response (keep it within the JSON
//!   safe-integer range `0 ..= 2⁵³` — JSON numbers are doubles, so
//!   larger ids round in transit); `body` is externally
//!   tagged, one of
//!   `{"Query": {"release_key": "…", "rects": [{"x0":…,"y0":…,"x1":…,"y1":…}, …]}}`,
//!   `{"Batch": [query, …]}`, `"Stats"`, `"Keys"`, `"Ping"`,
//!   `{"Hello": {"max_version": …}}` (negotiation, below),
//!   `{"Window": {"keyspace": "…", "epoch_start": …, "epoch_end": …,
//!   "rects": […]}}` (sliding-window sum over epoch releases, below)
//!   or `{"Report": {"keyspace": "…", "epoch": …, "epsilon": …,
//!   "cells": …, "oracle": "grr"|"oue", …}}` (an LDP report batch for
//!   the write path, below; OUE bit words travel as one lowercase hex
//!   string — JSON numbers are only exact to 2^53, the words use all
//!   64 bits).
//! * response: `{"protocol_version": 1, "id": 7, "body": …}` — see
//!   [`dpgrid_serve::wire::WireResponse`]; `body` is one of
//!   `{"Answers": …}`, `{"Batch": […]}`, `{"Stats": …}`,
//!   `{"Keys": […]}`, `"Pong"`, `{"Hello": {"version": …}}`,
//!   `{"Window": {"keyspace": "…", "covered": [{"start": …, "end": …},
//!   …], "answers": […]}}`,
//!   `{"Report": {"keyspace": "…", "epoch": …, "accepted": …,
//!   "epoch_total": …}}` or
//!   `{"Error": {"code": "…", "message": "…"}}`.
//!
//! JSON string escaping guarantees a frame never contains a raw
//! newline, so framing cannot desynchronise on content. Blank lines
//! are ignored (usable as keep-alives). Request frames are capped at
//! 16 MiB: a connection whose frame grows past the cap without a
//! newline is answered with a typed `MalformedRequest` error and
//! closed, so a newline-free stream cannot grow server memory
//! unboundedly. A frame that is not valid UTF-8 also gets a typed
//! `MalformedRequest` reply (the connection stays open).
//!
//! ## Binary v2 (the fast codec)
//!
//! Length-prefixed binary frames ([`dpgrid_serve::wire::binary`]): a
//! fixed 16-byte little-endian header followed by `payload_len` bytes
//! of payload —
//!
//! | bytes   | field        | value                                        |
//! |---------|--------------|----------------------------------------------|
//! | 0–1     | magic        | `0xD6 0xB2` (can never begin a JSON frame)   |
//! | 2       | version      | `2`                                          |
//! | 3       | frame type   | requests `0x01..=0x07`, responses `0x81..=0x88` |
//! | 4–11    | id           | `u64` LE — full range, no `2⁵³` ceiling      |
//! | 12–15   | payload len  | `u32` LE, capped at 16 MiB − 16 B            |
//!
//! Payloads carry rectangles and answers as raw `f64` arrays (no text
//! round-trip — the dominant cost of v1 at serving batch sizes) and
//! strings as length-prefixed UTF-8; both sides encode into reusable
//! per-connection buffers, the server writes header + payload with one
//! vectored write, and clients may **pipeline**: write N id-correlated
//! request frames in one burst, then read the N responses in order
//! ([`TcpClient::query_pipelined`], used by [`RemoteShard`] for every
//! scattered sub-batch). Malformed *payloads* under intact framing get
//! typed `MalformedRequest` replies and the connection survives;
//! anything that destroys byte framing — wrong magic, an over-cap
//! length prefix, a truncated frame — is answered typed and the
//! connection closed, exactly as v1 treats its 16 MiB flood guard.
//! NaN/infinite coordinates travel bit-exactly in v2 (unlike JSON's
//! `null` detour) and are rejected by the same boundary validation, so
//! codec choice never changes what reaches an engine.
//!
//! # Temporal keys and window queries
//!
//! Streaming ingestion (`dpgrid-stream`) publishes one release per
//! time epoch under the key grammar of `dpgrid_core::temporal`:
//! `{keyspace}@epoch:{i}` for a fine epoch, `{keyspace}@epoch:{s}-{e}`
//! for a compacted half-open tier. These are ordinary release keys —
//! they travel through `Query`/`Batch`/`Keys` unchanged, place on
//! shards by the same rendezvous hash, and `Keys` enumerates every
//! epoch of a keyspace. The `Window` request kind (JSON `{"Window":…}`
//! / binary `0x06`, additive within each codec version) asks the
//! server to resolve and sum the surfaces covering an epoch range in
//! one round trip: [`TcpClient::window`] on the client side,
//! `dpgrid_serve::answer_window` behind any server. A pre-`Window`
//! server rejects the kind as `MalformedRequest` — the standard
//! "feature unsupported" signal.
//!
//! # The write path: LDP report ingestion
//!
//! The `Report` request kind (JSON `{"Report":…}` / binary `0x07`,
//! additive within each codec version) is the protocol's only
//! *mutating* request: a batch of locally-perturbed frequency-oracle
//! reports (`dpgrid_mech::Grr` cell indices or `dpgrid_mech::Oue`
//! packed bit rows) bound for the server's `dpgrid_ldp` collector,
//! acknowledged with running totals. [`TcpClient::submit_report`]
//! sends one batch; [`TcpClient::submit_reports`] pipelines many as
//! id-correlated binary frames in a single write — the ingestion fast
//! path. Because the request mutates collector state, neither is ever
//! resent on a stale connection (unlike every read-path call): the
//! error surfaces and the caller decides whether re-submitting could
//! double-count. A read-only server — or one predating the kind —
//! answers `MalformedRequest`, the usual "feature unsupported" signal.
//!
//! Releases sealed from LDP reports carry
//! `dpgrid_core::TrustModel::Local` in their metadata: the server
//! never held raw points, but each estimate is far noisier than the
//! central-model releases the read path usually serves, and its ε is
//! per user per epoch. The serving tier treats both identically;
//! consumers that care can tell them apart by the metadata.
//!
//! # Error codes
//!
//! Failures carry a stable machine-readable
//! [`dpgrid_serve::wire::ErrorCode`]:
//!
//! | code                 | meaning                                    | client action |
//! |----------------------|--------------------------------------------|---------------|
//! | `UnknownKey`         | release key not in the catalog             | fix the key / wait for publish |
//! | `InvalidQuery`       | NaN/infinite/inverted rectangle            | fix the query |
//! | `Overloaded`         | admission control shed the request         | back off, retry |
//! | `MalformedRequest`   | frame did not parse as this protocol       | fix the client |
//! | `UnsupportedVersion` | `protocol_version` mismatch                | upgrade one side |
//! | `Internal`           | server-side failure                        | report / retry |
//!
//! # Versioning and negotiation
//!
//! Every connection starts in JSON v1 — the codec any peer of any age
//! can parse. A client that supports v2 sends one JSON
//! `Hello {max_version}` frame (id 0) as its first message:
//!
//! * a v2-capable server replies `Hello {version: min(client_max,
//!   server_max)}` and, when that lands on 2, the **same connection**
//!   switches to binary frames — both directions, no reconnect;
//! * an old server has no `Hello` variant, so the offer decodes as a
//!   `MalformedRequest` error — the exact additive-request-kind
//!   signal defined below — and the client silently stays on v1.
//!
//! The reverse direction needs no handshake at all: a v1-only client
//! simply never offers, and the server keeps speaking JSON. Negotiated
//! state lives and dies with the connection — a reconnecting client
//! ([`TcpClient`]'s one-shot redial, every pool checkout) re-offers
//! from scratch, so a server downgrade or replacement mid-session
//! renegotiates instead of writing binary frames at a peer that only
//! reads lines.
//!
//! Within one codec, `protocol_version` (JSON:
//! [`dpgrid_serve::wire::PROTOCOL_VERSION`] = 1, binary:
//! [`dpgrid_serve::wire::binary::PROTOCOL_VERSION`] = 2) bumps on any
//! incompatible change; both peers reject other versions with
//! `UnsupportedVersion` rather than guessing. Additive request kinds
//! within a version decode as `MalformedRequest` on older servers,
//! which clients must treat as "feature unsupported" (`Hello` itself
//! rides on that rule). The [`dpgrid_serve::wire::ErrorCode`] table is
//! shared by both codecs: JSON spells the *names*, binary carries one
//! stable byte per code ([`dpgrid_serve::wire::binary::code_byte`]) —
//! both append-only, never changing meaning.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dpgrid_core::{Method, Pipeline};
//! use dpgrid_geo::generators::PaperDataset;
//! use dpgrid_geo::Rect;
//! use dpgrid_net::{TcpClient, TcpServer};
//! use dpgrid_serve::{Catalog, QueryEngine};
//!
//! // Publish a release and serve it.
//! let data = PaperDataset::Storage.generate_n(1, 2_000).unwrap();
//! let mut catalog = Catalog::new();
//! Pipeline::new(&data)
//!     .epsilon(1.0)
//!     .method(Method::ug(16))
//!     .seed(7)
//!     .publish_into(&mut catalog, "storage")
//!     .unwrap();
//! let engine = Arc::new(QueryEngine::new(catalog));
//! let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
//!
//! // Query it over loopback.
//! let mut client = TcpClient::connect(server.local_addr()).unwrap();
//! let q = Rect::new(-100.0, 30.0, -90.0, 40.0).unwrap();
//! let response = client.query("storage", &[q]).unwrap();
//! assert_eq!(response.answers.len(), 1);
//! server.shutdown();
//! ```

// Unsafe is denied crate-wide and allowed back in exactly one place:
// the FFI shim at the bottom of `poll.rs` that binds the libc
// readiness syscalls std links but does not expose.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod conn;
mod counters;
mod error;
mod ingest;
pub mod mux;
pub mod poll;
mod pool;
mod remote;
mod server;

pub use client::{TcpClient, CONNECT_TIMEOUT, DEFAULT_IO_TIMEOUT};
pub use error::{NetError, Result};
pub use ingest::ReportRouter;
pub use mux::MuxServer;
pub use pool::{TcpClientPool, DEFAULT_MAX_IDLE};
pub use remote::RemoteShard;
pub use server::{ServerMode, TcpServer};

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_core::{Method, Pipeline};
    use dpgrid_geo::generators::PaperDataset;
    use dpgrid_geo::Rect;
    use dpgrid_serve::wire::ErrorCode;
    use dpgrid_serve::{Catalog, QueryEngine, QueryRequest};
    use std::sync::Arc;

    fn engine(keys: &[(&str, u64)]) -> QueryEngine {
        let ds = PaperDataset::Storage.generate_n(21, 1_500).unwrap();
        let mut catalog = Catalog::new();
        for (key, seed) in keys {
            Pipeline::new(&ds)
                .method(Method::ug(8))
                .seed(*seed)
                .publish_into(&mut catalog, *key)
                .unwrap();
        }
        QueryEngine::new(catalog)
    }

    #[test]
    fn roundtrip_query_stats_ping_over_loopback() {
        let engine = Arc::new(engine(&[("a", 1), ("b", 2)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(server.local_addr()).unwrap();

        client.ping().unwrap();
        let q = Rect::new(-120.0, 20.0, -90.0, 40.0).unwrap();
        let remote = client.query("a", &[q]).unwrap();
        let local = engine.answer(&QueryRequest::new("a", vec![q])).unwrap();
        assert_eq!(remote.answers, local.answers);
        assert_eq!(remote.version, 1);

        let outcomes = client
            .query_batch(&[
                QueryRequest::new("b", vec![q]),
                QueryRequest::new("nope", vec![q]),
            ])
            .unwrap();
        assert!(outcomes[0].is_ok());
        assert!(matches!(&outcomes[1], Err(e) if e.code == ErrorCode::UnknownKey));

        let stats = client.stats().unwrap();
        assert!(stats.requests >= 3);
        assert_eq!(stats.catalog.releases, 2);
        assert!(server.frames_served() >= 4);
        server.shutdown();
    }

    #[test]
    fn server_shuts_down_with_idle_connections_open() {
        let engine = Arc::new(engine(&[("a", 1)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        // Two idle connections that never send a byte must not block
        // the graceful shutdown.
        let _idle1 = TcpClient::connect(server.local_addr()).unwrap();
        let _idle2 = TcpClient::connect(server.local_addr()).unwrap();
        server.shutdown();
    }

    #[test]
    fn unattributed_server_errors_surface_typed_not_as_id_mismatch() {
        // A server that cannot attribute a frame replies under id 0
        // (e.g. the 16 MiB frame-cap rejection); the client must
        // surface the typed error, not a confusing id-mismatch
        // protocol error. Simulated with a one-shot fake server.
        use dpgrid_serve::wire::{ErrorCode, WireError, WireResponse};
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let frame = WireResponse::error(
                0,
                WireError::new(ErrorCode::MalformedRequest, "frame exceeds the cap"),
            )
            .encode();
            stream.write_all(frame.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        });
        // Pinned to v1 so no Hello consumes the fake's single frame.
        let mut client = TcpClient::connect_with_protocol(addr, 1).unwrap();
        match client.ping() {
            Err(NetError::Server(e)) => assert_eq!(e.code, ErrorCode::MalformedRequest),
            other => panic!("expected typed server error, got {other:?}"),
        }
        fake.join().unwrap();
    }

    #[test]
    fn stats_reconcile_out_of_band_compiles_into_the_budget() {
        // Compiling through the with_catalog escape hatch on an
        // otherwise idle engine must show up (and be bounded) on the
        // very next stats read — not only after future query traffic.
        use dpgrid_geo::Synopsis as _;
        let engine = Arc::new(engine(&[("a", 1), ("b", 2)]));
        let q = Rect::new(-120.0, 20.0, -90.0, 40.0).unwrap();
        engine.with_catalog(|catalog| {
            for key in ["a", "b"] {
                catalog.release(key).unwrap().answer(&q);
            }
        });
        let stats = dpgrid_serve::QueryService::stats(&*engine);
        assert!(stats.catalog.resident_bytes > 0, "sweep accounted bytes");
        assert_eq!(stats.catalog.warm, 2);
        assert!(stats.catalog.resident_bytes <= stats.catalog.budget_bytes);
    }

    #[test]
    fn disconnect_is_reported_when_no_server_comes_back() {
        let engine = Arc::new(engine(&[("a", 1)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        server.shutdown();
        // The next call fails with a transport error, not a hang: the
        // one-shot reconnect finds nothing listening.
        let err = client.ping().unwrap_err();
        assert!(matches!(err, NetError::Disconnected | NetError::Io(_)));
        assert!(!client.is_connected());
    }

    #[test]
    fn client_reconnects_once_across_a_server_restart() {
        let engine = Arc::new(engine(&[("a", 1)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut client = TcpClient::connect(addr).unwrap();
        client.ping().unwrap();
        server.shutdown();
        // Kill-and-restart on the same (previously ephemeral) port: the
        // stranded client's next call hits a dead connection, redials
        // once, and succeeds — no rebuild, no error surfaced.
        let server = TcpServer::bind(Arc::clone(&engine), addr).unwrap();
        client.ping().unwrap();
        let q = Rect::new(-120.0, 20.0, -90.0, 40.0).unwrap();
        let remote = client.query("a", &[q]).unwrap();
        let local = engine.answer(&QueryRequest::new("a", vec![q])).unwrap();
        assert_eq!(remote.answers, local.answers);
        assert!(client.is_connected());

        // A restart *while disconnected* also heals lazily: kill,
        // surface one error, restart, next call redials.
        server.shutdown();
        assert!(client.ping().is_err());
        let server = TcpServer::bind(Arc::clone(&engine), addr).unwrap();
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn window_queries_travel_over_both_codecs() {
        use dpgrid_core::{epoch_key, EpochRange};
        let keys: Vec<String> = (0..3)
            .map(|e| epoch_key("taxi", EpochRange::single(e)))
            .collect();
        let engine = Arc::new(engine(&[
            (keys[0].as_str(), 1),
            (keys[1].as_str(), 2),
            (keys[2].as_str(), 3),
        ]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let q = Rect::new(-120.0, 20.0, -90.0, 40.0).unwrap();
        let expected: f64 = (1..3)
            .map(|e| {
                engine
                    .answer(&QueryRequest::new(keys[e].clone(), vec![q]))
                    .unwrap()
                    .answers[0]
            })
            .sum();
        // Binary v2 (negotiated) and pinned JSON v1 must agree.
        for max_protocol in [2u32, 1] {
            let mut client =
                TcpClient::connect_with_protocol(server.local_addr(), max_protocol).unwrap();
            assert_eq!(client.protocol_version(), Some(max_protocol));
            let answer = client.window("taxi", 1, 3, &[q]).unwrap();
            assert_eq!(answer.keyspace, "taxi");
            assert_eq!(
                answer.covered,
                vec![EpochRange::single(1), EpochRange::single(2)]
            );
            assert!((answer.answers[0] - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
            // Uncovered windows come back as typed UnknownKey errors.
            match client.window("taxi", 10, 12, &[q]) {
                Err(NetError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownKey),
                other => panic!("expected UnknownKey, got {other:?}"),
            }
        }
        server.shutdown();
    }

    fn collecting(keyspace: &str) -> Arc<dpgrid_ldp::CollectingService<dpgrid_serve::QueryEngine>> {
        use dpgrid_ldp::{CollectingService, CollectorConfig, ReportCollector};
        use dpgrid_mech::BudgetSchedule;
        let config = CollectorConfig::new(
            keyspace,
            dpgrid_geo::Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap(),
            8,
            8,
            BudgetSchedule::uniform(1.0, 4).unwrap(),
        )
        .unwrap();
        Arc::new(CollectingService::new(
            QueryEngine::new(Catalog::new()),
            ReportCollector::new(config).unwrap(),
        ))
    }

    fn grr_batch(
        keyspace: &str,
        epoch: u64,
        epsilon: f64,
        reports: Vec<u32>,
    ) -> dpgrid_serve::ReportBatch {
        dpgrid_serve::ReportBatch {
            keyspace: keyspace.into(),
            epoch,
            epsilon,
            cells: 64,
            payload: dpgrid_serve::ReportPayload::Grr(reports),
        }
    }

    #[test]
    fn report_batches_travel_both_codecs_and_seal_into_served_releases() {
        let service = collecting("taxi");
        let server = TcpServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let eps = service.with_collector(|c| c.open_epsilon().unwrap());

        for max_protocol in [2u32, 1] {
            let mut client =
                TcpClient::connect_with_protocol(server.local_addr(), max_protocol).unwrap();
            assert_eq!(client.protocol_version(), Some(max_protocol));
            let ack = client
                .submit_report(&grr_batch("taxi", 0, eps, vec![9, 9, 9]))
                .unwrap();
            assert_eq!(ack.accepted, 3);

            // Pipelined over binary, sequential over JSON — either
            // way, per-batch rejections fail only their own slot.
            let outcomes = client
                .submit_reports(&[
                    grr_batch("taxi", 0, eps, vec![1, 2]),
                    grr_batch("taxi", 5, eps, vec![1]), // future epoch
                    grr_batch("taxi", 0, eps, vec![3]),
                ])
                .unwrap();
            assert!(outcomes[0].is_ok());
            assert!(matches!(&outcomes[1], Err(e) if e.code == ErrorCode::InvalidQuery));
            assert!(outcomes[2].is_ok());
        }
        // Both codecs fed one collector: (3 + 2 + 1) reports × 2.
        assert_eq!(service.with_collector(|c| c.open_reports()), 12);

        // The transport counted exactly the acknowledged batches.
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        let stats = client.stats().unwrap();
        // 6 reports per codec pass (3 + 2 + 1; the rejected future
        // epoch counts nothing), v2 then v1.
        assert_eq!(stats.transport.unwrap().reports_accepted, 12);

        // Sealing turns the epoch into an ordinary served release.
        let sealed = service.seal_open_epoch().unwrap();
        service
            .inner()
            .insert(sealed.summary.key.clone(), sealed.release);
        assert_eq!(client.keys().unwrap(), vec!["taxi@epoch:0".to_string()]);
        server.shutdown();
    }

    #[test]
    fn read_only_servers_reject_reports_as_feature_unsupported() {
        let engine = Arc::new(engine(&[("a", 1)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        match client.submit_report(&grr_batch("taxi", 0, 1.0, vec![1])) {
            Err(NetError::Server(e)) => assert_eq!(e.code, ErrorCode::MalformedRequest),
            other => panic!("expected MalformedRequest, got {other:?}"),
        }
        // Pipelined slots degrade typed too, connection intact.
        let outcomes = client
            .submit_reports(&[
                grr_batch("taxi", 0, 1.0, vec![1]),
                grr_batch("taxi", 0, 1.0, vec![2]),
            ])
            .unwrap();
        for outcome in &outcomes {
            assert!(matches!(outcome, Err(e) if e.code == ErrorCode::MalformedRequest));
        }
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn report_router_aggregates_on_the_shard_that_serves_the_epoch() {
        use dpgrid_core::{Release, ShardedSink};
        use dpgrid_serve::ServeError;
        let names = ["alpha".to_string(), "beta".to_string()];
        // One keyspace owned by each shard, found via the shared
        // placement function — nothing in the test hardcodes the hash.
        let owned_by = |shard: &str| {
            (0u32..)
                .map(|i| format!("ks{i}"))
                .find(|ks| {
                    let key = ReportRouter::placement_key(ks, 0);
                    names[dpgrid_core::rendezvous_route(&names, &key).unwrap()] == *shard
                })
                .unwrap()
        };
        let ks_a = owned_by("alpha");
        let ks_b = owned_by("beta");

        let svc_a = collecting(&ks_a);
        let svc_b = collecting(&ks_b);
        let server_a = TcpServer::bind(Arc::clone(&svc_a), "127.0.0.1:0").unwrap();
        let server_b = TcpServer::bind(Arc::clone(&svc_b), "127.0.0.1:0").unwrap();
        let router = ReportRouter::connect([
            ("alpha".to_string(), server_a.local_addr()),
            ("beta".to_string(), server_b.local_addr()),
        ])
        .unwrap();
        assert_eq!(router.route(&ks_a, 0), "alpha");
        assert_eq!(router.route(&ks_b, 0), "beta");

        let eps = svc_a.with_collector(|c| c.open_epsilon().unwrap());
        let outcomes = router.submit_reports(&[
            grr_batch(&ks_a, 0, eps, vec![1, 2]),
            grr_batch(&ks_b, 0, eps, vec![3]),
            grr_batch(&ks_a, 0, eps, vec![4, 5, 6]),
        ]);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(svc_a.with_collector(|c| c.open_reports()), 5);
        assert_eq!(svc_b.with_collector(|c| c.open_reports()), 1);

        // Ingestion placement agrees with the publishing side's
        // ShardedSink over the same names — the seal of an ingested
        // epoch lands where the read router will look for it.
        let sink: ShardedSink<Vec<(String, Release)>> =
            ShardedSink::new(names.iter().map(|n| (n.clone(), Vec::new())).collect());
        for ks in [&ks_a, &ks_b] {
            assert_eq!(
                sink.route(&ReportRouter::placement_key(ks, 0)),
                Some(router.route(ks, 0))
            );
        }

        // A dead shard fails exactly its own slice of the batch.
        server_b.shutdown();
        let outcomes = router.submit_reports(&[
            grr_batch(&ks_a, 0, eps, vec![7]),
            grr_batch(&ks_b, 0, eps, vec![8]),
        ]);
        assert!(outcomes[0].is_ok());
        assert!(
            matches!(&outcomes[1], Err(ServeError::Unavailable { shard, .. }) if shard == "beta")
        );
        server_a.shutdown();
    }

    #[test]
    fn keys_travel_over_the_wire() {
        let engine = Arc::new(engine(&[("b", 2), ("a", 1)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.keys().unwrap(), vec!["a", "b"]);
        server.shutdown();
    }

    #[test]
    fn pool_reuses_parked_connections_and_survives_restart() {
        let engine = Arc::new(engine(&[("a", 1)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let pool = TcpClientPool::connect(addr).unwrap().with_max_idle(2);
        assert_eq!(pool.addr(), addr);
        // The verification connection was parked; a call reuses it.
        assert_eq!(pool.idle_connections(), 1);
        pool.with_client(|c| c.ping()).unwrap();
        assert_eq!(pool.idle_connections(), 1);
        // Concurrent checkouts dial extra connections, parked up to
        // the cap afterwards.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| pool.with_client(|c| c.ping()).unwrap());
            }
        });
        assert!(pool.idle_connections() <= 2);
        // Restart: parked connections are stale; each client's
        // one-shot reconnect heals them transparently.
        server.shutdown();
        let server = TcpServer::bind(Arc::clone(&engine), addr).unwrap();
        pool.with_client(|c| c.ping()).unwrap();
        server.shutdown();
    }

    #[test]
    fn remote_overload_recovers_the_servers_counters() {
        use dpgrid_serve::{QueryService, ServeError};
        let engine = Arc::new(engine(&[("a", 1)]).with_admission_limit(2));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let shard = RemoteShard::connect(server.local_addr()).unwrap();
        let rects: Vec<Rect> = (0..3)
            .map(|i| Rect::new(-120.0 + i as f64, 20.0, -90.0, 40.0).unwrap())
            .collect();
        // 3 rects against a budget of 2: shed remotely, and the typed
        // error carries the server's counters, not zeroed placeholders.
        let result = shard
            .answer_batch(&[QueryRequest::new("a", rects)])
            .remove(0);
        match result {
            Err(ServeError::Overloaded {
                inflight_rects,
                limit,
            }) => {
                assert_eq!(inflight_rects, 0);
                assert_eq!(limit, 2);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn remote_shard_serves_and_degrades_typed() {
        use dpgrid_serve::shard::Shard;
        use dpgrid_serve::{QueryService, ServeError};
        let engine = Arc::new(engine(&[("a", 1), ("b", 2)]));
        let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let shard = RemoteShard::connect(server.local_addr()).unwrap();
        assert_eq!(shard.addr(), server.local_addr());
        assert_eq!(QueryService::keys(&shard), vec!["a", "b"]);
        assert!(shard.contains_key("a"));
        assert!(!shard.contains_key("zz"));

        let q = Rect::new(-120.0, 20.0, -90.0, 40.0).unwrap();
        let results = shard.answer_batch(&[
            QueryRequest::new("a", vec![q]),
            QueryRequest::new("missing", vec![q]),
        ]);
        let local = engine.answer(&QueryRequest::new("a", vec![q])).unwrap();
        assert_eq!(results[0].as_ref().unwrap().answers, local.answers);
        assert!(matches!(
            results[1],
            Err(ServeError::UnknownRelease(ref k)) if k == "missing"
        ));
        assert_eq!(
            QueryService::stats(&shard).requests,
            engine.stats().requests
        );

        // Server gone: the whole sub-batch fails Unavailable, stats
        // and keys degrade to zero/empty instead of panicking.
        server.shutdown();
        let results = shard.answer_batch(&[QueryRequest::new("a", vec![q])]);
        assert!(matches!(
            results[0],
            Err(ServeError::Unavailable { ref shard, .. }) if !shard.is_empty()
        ));
        assert_eq!(
            QueryService::stats(&shard),
            dpgrid_serve::EngineStats::zeroed()
        );
        assert!(QueryService::keys(&shard).is_empty());
    }
}
