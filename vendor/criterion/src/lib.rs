//! Offline stand-in for `criterion`.
//!
//! Implements the macro and type surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched` — over a simple adaptive wall-clock
//! timer. Statistics are deliberately minimal (median of timed batches);
//! the point is stable relative comparisons, not criterion's full
//! bootstrap analysis.
//!
//! Environment knobs:
//!
//! * `CRITERION_QUICK=1` — cut measurement time ~10× (used by CI smoke
//!   runs);
//! * results are printed as `<id> ... time: <t> per iter` lines and
//!   collected in [`Criterion::results`] so harness code can export
//!   them.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; accepted for API
/// compatibility, the stub times every batch individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs: large batches.
    SmallInput,
    /// Large routine inputs: batch per iteration.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Median seconds per iteration.
    pub seconds_per_iter: f64,
    /// Iterations contributing to the measurement.
    pub iterations: u64,
}

/// Timing engine handed to benchmark closures.
pub struct Bencher {
    target_time: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    fn new(target_time: Duration) -> Self {
        Bencher {
            target_time,
            result: None,
        }
    }

    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size targeting ~1 ms per batch.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed()
            < self
                .target_time
                .mul_f64(0.2)
                .min(Duration::from_millis(200))
            || warmup_iters < 1
        {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((1e-3 / per_iter.max(1e-12)) as u64).clamp(1, 10_000_000);

        let mut samples = Vec::new();
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.target_time || samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
            total_iters += batch;
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some((samples[samples.len() / 2], total_iters));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::new();
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.target_time || samples.len() < 3 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(t.elapsed().as_secs_f64());
            total_iters += 1;
            if samples.len() >= 100 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some((samples[samples.len() / 2], total_iters));
    }

    /// Like [`Bencher::iter_batched`] with a by-reference routine.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn default_target_time() -> Duration {
    if std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0") {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(300)
    }
}

/// The benchmark manager: entry point handed to `criterion_group!`
/// functions.
pub struct Criterion {
    target_time: Duration,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: default_target_time(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(id, f);
        self
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher::new(self.target_time);
        f(&mut bencher);
        let (seconds, iterations) = bencher.result.unwrap_or((f64::NAN, 0));
        println!(
            "{id:<40} time: {:>12} per iter ({iterations} iterations)",
            format_time(seconds)
        );
        self.results.push(Measurement {
            id,
            seconds_per_iter: seconds,
            iterations,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion API compatibility; the stub's sampling is
    /// time-driven rather than count-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the per-benchmark measurement time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.target_time = t;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(id, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Mirrors `criterion::black_box` (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main`, like upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_closure() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
            results: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].seconds_per_iter >= 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
            results: Vec::new(),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("x", |b| {
            b.iter_batched(|| 41, |v| v + 1, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.results()[0].id, "g/x");
    }
}
