//! Two-party workflow: a data owner publishes a DP release file; an
//! analyst who never sees the raw data loads it and works with it.
//!
//! ```sh
//! cargo run --release --example publish_and_consume
//! ```

use dpgrid::core::{synthetic, Release};
use dpgrid::prelude::*;
use rand::SeedableRng;

fn main() {
    let path = std::env::temp_dir().join("dpgrid_demo_release.json");

    // ---------------- data owner side ----------------
    {
        let private_data = PaperDataset::Checkin
            .generate_n(99, 150_000)
            .expect("generate dataset");
        // One fluent chain: pick the method from the registry, spend
        // ε = 1, publish. (Unseeded: a production release must draw
        // unpredictable noise.)
        let release = Pipeline::new(&private_data)
            .epsilon(1.0)
            .method(Method::ag_suggested())
            .publish()
            .expect("publish AG");
        release.save(&path).expect("save release");
        println!(
            "owner: published `{}` — {} cells ({} bytes) consuming ε = {}",
            release.method(),
            release.cell_count(),
            std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
            release.epsilon(),
        );
        // The raw data never leaves this scope.
    }

    // ---------------- analyst side ----------------
    {
        let release = Release::load(&path).expect("load release");
        println!(
            "analyst: loaded release from method `{}` over a {:.0} x {:.0} domain",
            release.method(),
            release.domain().width(),
            release.domain().height()
        );
        // The typed metadata says exactly how it was produced — the
        // declarative method and the guideline-resolved parameters.
        println!(
            "analyst: declarative method {:?}, resolved {:?}",
            release.metadata().method,
            release.metadata().resolved
        );

        // Ask questions directly. The first answer compiles the cells
        // into a query surface; every answer after that is O(log cells).
        let europe = Rect::new(-10.0, 36.0, 30.0, 60.0).unwrap();
        let na = Rect::new(-125.0, 25.0, -65.0, 55.0).unwrap();
        println!(
            "analyst: estimated check-ins — Europe {:.0}, North America {:.0}",
            release.answer(&europe),
            release.answer(&na)
        );
        println!(
            "analyst: release compiled to {:?} over {} cells",
            release.surface().kind(),
            release.cell_count()
        );

        // Serving-style batch: a whole dashboard of tiles in one call,
        // chunked across threads by the compiled surface.
        let d = *release.domain().rect();
        let tiles: Vec<Rect> = (0..40)
            .flat_map(|i| (0..20).map(move |j| d.grid_cell(40, 20, i, j)))
            .collect();
        let estimates = release.answer_all(&tiles);
        let busiest = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "analyst: answered {} dashboard tiles in one batch; busiest tile ≈ {:.0} check-ins",
            tiles.len(),
            busiest
        );

        // ...or regenerate a synthetic dataset for tools that need points.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let synth = synthetic::synthesize(&release, 25_000, &mut rng).expect("synthesize");
        let synth_europe = synth.count_in(&europe) as f64 / synth.len() as f64;
        let est_europe = release.answer(&europe) / release.total_estimate();
        println!(
            "analyst: Europe share — synthetic {:.1}% vs release {:.1}%",
            synth_europe * 100.0,
            est_europe * 100.0
        );
    }

    let _ = std::fs::remove_file(&path);
}
