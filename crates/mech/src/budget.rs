//! Privacy-budget accounting and per-level allocation schemes.

use serde::{Deserialize, Serialize};

use crate::{check_epsilon, MechError, Result};

/// Tracks consumption of a total privacy budget ε under **sequential
/// composition**: the sum of the ε's of all steps applied to the same data
/// must not exceed the total.
///
/// The grid methods use this to make their accounting explicit and
/// auditable: e.g. AG spends `α·ε` on the first level and `(1−α)·ε` on the
/// second; a `PrivacyBudget` makes over-spending a hard error instead of a
/// silent privacy violation.
///
/// Spending tolerates a relative slack of 10⁻⁹ to absorb floating-point
/// accumulation in long fraction chains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// Relative floating-point slack tolerated when spending.
    const SLACK: f64 = 1e-9;

    /// Creates a budget with total ε.
    pub fn new(total: f64) -> Result<Self> {
        Ok(PrivacyBudget {
            total: check_epsilon(total)?,
            spent: 0.0,
        })
    }

    /// The total ε.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε already consumed.
    #[inline]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// ε still available.
    #[inline]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Consumes `epsilon` from the budget.
    pub fn spend(&mut self, epsilon: f64) -> Result<f64> {
        let epsilon = check_epsilon(epsilon)?;
        if epsilon > self.remaining() * (1.0 + Self::SLACK) + f64::MIN_POSITIVE {
            return Err(MechError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent = (self.spent + epsilon).min(self.total);
        Ok(epsilon)
    }

    /// Consumes `fraction` (in `(0, 1]`) of the *total* budget.
    pub fn spend_fraction(&mut self, fraction: f64) -> Result<f64> {
        if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
            return Err(MechError::InvalidFraction(fraction));
        }
        self.spend(self.total * fraction)
    }

    /// Consumes everything that remains and returns it.
    pub fn spend_all(&mut self) -> f64 {
        let rest = self.remaining();
        self.spent = self.total;
        rest
    }

    /// Whether the budget is (numerically) fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() <= self.total * Self::SLACK
    }
}

/// Splits ε uniformly over `levels` levels (Cormode et al.'s baseline
/// allocation for hierarchies): every level gets `ε / levels`.
pub fn uniform_allocation(epsilon: f64, levels: usize) -> Result<Vec<f64>> {
    let epsilon = check_epsilon(epsilon)?;
    if levels == 0 {
        return Err(MechError::ZeroLevels);
    }
    Ok(vec![epsilon / levels as f64; levels])
}

/// Geometric budget allocation over `levels` levels with per-level ratio
/// `ratio` (> 0): level `i` (0 = root) receives ε proportional to
/// `ratio^i`, so with `ratio > 1` the leaves get the most budget.
///
/// Cormode et al. recommend `ratio = 2^(1/3)` for binary spatial
/// decompositions (\[3\], geometric budgeting); the KD baselines use this
/// with the branching-factor-adjusted ratio.
pub fn geometric_allocation(epsilon: f64, levels: usize, ratio: f64) -> Result<Vec<f64>> {
    let epsilon = check_epsilon(epsilon)?;
    if levels == 0 {
        return Err(MechError::ZeroLevels);
    }
    if !ratio.is_finite() || ratio <= 0.0 {
        return Err(MechError::InvalidFraction(ratio));
    }
    let weights: Vec<f64> = (0..levels).map(|i| ratio.powi(i as i32)).collect();
    let total: f64 = weights.iter().sum();
    Ok(weights.into_iter().map(|w| epsilon * w / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_tracks_and_rejects_overdraft() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        assert_eq!(b.remaining(), 1.0);
        b.spend(0.4).unwrap();
        assert!((b.remaining() - 0.6).abs() < 1e-12);
        assert!(b.spend(0.7).is_err());
        b.spend(0.6).unwrap();
        assert!(b.is_exhausted());
        assert!(b.spend(0.01).is_err());
    }

    #[test]
    fn spend_fraction_validates() {
        let mut b = PrivacyBudget::new(2.0).unwrap();
        assert!(b.spend_fraction(0.0).is_err());
        assert!(b.spend_fraction(1.5).is_err());
        assert!(b.spend_fraction(f64::NAN).is_err());
        let got = b.spend_fraction(0.5).unwrap();
        assert!((got - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spend_all_consumes_exact_remainder() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.spend(0.25).unwrap();
        let rest = b.spend_all();
        assert!((rest - 0.75).abs() < 1e-12);
        assert!(b.is_exhausted());
        assert_eq!(b.spend_all(), 0.0);
    }

    #[test]
    fn float_slack_tolerated() {
        // Ten spends of ε/10 must succeed despite rounding.
        let mut b = PrivacyBudget::new(1.0).unwrap();
        for _ in 0..10 {
            b.spend(0.1).unwrap();
        }
        assert!(b.is_exhausted());
    }

    #[test]
    fn invalid_total_rejected() {
        assert!(PrivacyBudget::new(0.0).is_err());
        assert!(PrivacyBudget::new(-1.0).is_err());
        assert!(PrivacyBudget::new(f64::NAN).is_err());
    }

    #[test]
    fn uniform_allocation_sums_to_epsilon() {
        let a = uniform_allocation(1.0, 4).unwrap();
        assert_eq!(a.len(), 4);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(a.iter().all(|&e| (e - 0.25).abs() < 1e-12));
        assert!(uniform_allocation(1.0, 0).is_err());
    }

    #[test]
    fn geometric_allocation_increases_towards_leaves() {
        let ratio = 2f64.powf(1.0 / 3.0);
        let a = geometric_allocation(1.0, 5, ratio).unwrap();
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
            assert!((w[1] / w[0] - ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn geometric_allocation_ratio_one_is_uniform() {
        let a = geometric_allocation(2.0, 3, 1.0).unwrap();
        for &e in &a {
            assert!((e - 2.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn geometric_allocation_validates() {
        assert!(geometric_allocation(1.0, 0, 1.0).is_err());
        assert!(geometric_allocation(1.0, 3, 0.0).is_err());
        assert!(geometric_allocation(1.0, 3, f64::NAN).is_err());
        assert!(geometric_allocation(-1.0, 3, 1.0).is_err());
    }
}
