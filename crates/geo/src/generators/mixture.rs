//! Cluster-mixture sampling: the engine behind every synthetic dataset.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Domain, GeoDataset, GeoError, Point, Rect, Result};

/// One component of a [`ClusterMixture`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Component {
    /// An axis-aligned Gaussian cluster (a "city").
    Gaussian {
        /// Cluster center.
        center: Point,
        /// Standard deviation along x.
        sigma_x: f64,
        /// Standard deviation along y.
        sigma_y: f64,
    },
    /// Uniformly distributed points inside a rectangle (a "state" of
    /// near-uniform density, like the road dataset's two states).
    Uniform {
        /// The rectangle points are drawn from.
        rect: Rect,
    },
}

impl Component {
    fn validate(&self) -> Result<()> {
        match self {
            Component::Gaussian {
                center,
                sigma_x,
                sigma_y,
            } => {
                if !center.is_finite() {
                    return Err(GeoError::InvalidGeneratorSpec(
                        "gaussian center must be finite".into(),
                    ));
                }
                if !sigma_x.is_finite()
                    || *sigma_x <= 0.0
                    || !sigma_y.is_finite()
                    || *sigma_y <= 0.0
                {
                    return Err(GeoError::InvalidGeneratorSpec(format!(
                        "gaussian sigmas must be positive and finite, got ({sigma_x}, {sigma_y})"
                    )));
                }
                Ok(())
            }
            Component::Uniform { rect } => {
                if rect.is_empty() {
                    return Err(GeoError::InvalidGeneratorSpec(
                        "uniform component rectangle must have positive area".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Draws one point from the component (unclipped).
    fn sample(&self, rng: &mut impl Rng) -> Point {
        match self {
            Component::Gaussian {
                center,
                sigma_x,
                sigma_y,
            } => {
                let (z0, z1) = standard_normal_pair(rng);
                Point::new(center.x + z0 * sigma_x, center.y + z1 * sigma_y)
            }
            Component::Uniform { rect } => Point::new(
                rng.random_range(rect.x0()..rect.x1()),
                rng.random_range(rect.y0()..rect.y1()),
            ),
        }
    }
}

/// A weighted mixture of clusters confined to a domain.
///
/// Sampling draws a component proportionally to its weight, then a point
/// from the component; points falling outside the domain are re-drawn a
/// bounded number of times and finally clamped just inside the domain, so
/// the output dataset always validates against its domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterMixture {
    domain: Domain,
    components: Vec<Component>,
    /// Cumulative normalized weights, same length as `components`.
    cumulative: Vec<f64>,
}

impl ClusterMixture {
    /// Builds a mixture from `(component, weight)` pairs.
    pub fn new(domain: Domain, weighted: Vec<(Component, f64)>) -> Result<Self> {
        if weighted.is_empty() {
            return Err(GeoError::InvalidGeneratorSpec(
                "mixture needs at least one component".into(),
            ));
        }
        let mut total = 0.0;
        for (c, w) in &weighted {
            c.validate()?;
            if !w.is_finite() || *w <= 0.0 {
                return Err(GeoError::InvalidGeneratorSpec(format!(
                    "component weight must be positive and finite, got {w}"
                )));
            }
            total += w;
        }
        let mut cumulative = Vec::with_capacity(weighted.len());
        let mut acc = 0.0;
        let mut components = Vec::with_capacity(weighted.len());
        for (c, w) in weighted {
            acc += w / total;
            cumulative.push(acc);
            components.push(c);
        }
        // Guard against accumulated floating-point slack.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(ClusterMixture {
            domain,
            components,
            cumulative,
        })
    }

    /// The mixture's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Draws a single point, guaranteed to lie inside the domain.
    pub fn sample_point(&self, rng: &mut impl Rng) -> Point {
        let u: f64 = rng.random();
        let k = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.components.len() - 1);
        let comp = &self.components[k];
        // Rejection sampling with a bounded number of retries keeps the
        // in-domain distribution shape; the final clamp is a rare fallback
        // for clusters sitting close to the boundary.
        for _ in 0..16 {
            let p = comp.sample(rng);
            if self.domain.contains(&p) && self.domain.rect().contains(&p) {
                return p;
            }
        }
        let p = comp.sample(rng);
        self.clamp_into_domain(p)
    }

    /// Samples `n` points into a dataset.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> GeoDataset {
        let points = (0..n).map(|_| self.sample_point(rng)).collect();
        GeoDataset::from_points(points, self.domain)
            .expect("mixture sampling produced out-of-domain point")
    }

    fn clamp_into_domain(&self, p: Point) -> Point {
        let r = self.domain.rect();
        // Keep strictly below the upper edges so half-open cell bucketing
        // never needs the closed-edge special case for synthetic data.
        let eps_x = r.width() * 1e-12;
        let eps_y = r.height() * 1e-12;
        Point::new(
            p.x.clamp(r.x0(), r.x1() - eps_x),
            p.y.clamp(r.y0(), r.y1() - eps_y),
        )
    }
}

/// Draws a pair of independent standard normal variates via Box–Muller.
///
/// Implemented locally to keep the dependency set to `rand` alone (the
/// `rand_distr` crate would otherwise be required).
pub fn standard_normal_pair(rng: &mut impl Rng) -> (f64, f64) {
    // u ∈ (0, 1]: avoid ln(0).
    let u: f64 = 1.0 - rng.random::<f64>();
    let v: f64 = rng.random();
    let r = (-2.0 * u.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * v;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_empty_mixture() {
        let d = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(ClusterMixture::new(d, vec![]).is_err());
    }

    #[test]
    fn rejects_bad_weights_and_sigmas() {
        let d = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let g = Component::Gaussian {
            center: Point::new(0.5, 0.5),
            sigma_x: 0.1,
            sigma_y: 0.1,
        };
        assert!(ClusterMixture::new(d, vec![(g.clone(), 0.0)]).is_err());
        assert!(ClusterMixture::new(d, vec![(g.clone(), f64::NAN)]).is_err());
        let bad = Component::Gaussian {
            center: Point::new(0.5, 0.5),
            sigma_x: -1.0,
            sigma_y: 0.1,
        };
        assert!(ClusterMixture::new(d, vec![(bad, 1.0)]).is_err());
    }

    #[test]
    fn samples_stay_in_domain() {
        let d = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        // Cluster deliberately centered on the boundary.
        let mix = ClusterMixture::new(
            d,
            vec![(
                Component::Gaussian {
                    center: Point::new(1.0, 1.0),
                    sigma_x: 0.5,
                    sigma_y: 0.5,
                },
                1.0,
            )],
        )
        .unwrap();
        let ds = mix.sample(5_000, &mut rng(11));
        assert_eq!(ds.len(), 5_000);
        for p in ds.points() {
            assert!(d.contains(p));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let mix = ClusterMixture::new(
            d,
            vec![
                (
                    Component::Gaussian {
                        center: Point::new(3.0, 3.0),
                        sigma_x: 1.0,
                        sigma_y: 1.0,
                    },
                    2.0,
                ),
                (
                    Component::Uniform {
                        rect: Rect::new(5.0, 5.0, 9.0, 9.0).unwrap(),
                    },
                    1.0,
                ),
            ],
        )
        .unwrap();
        let a = mix.sample(100, &mut rng(5));
        let b = mix.sample(100, &mut rng(5));
        assert_eq!(a.points(), b.points());
    }

    #[test]
    fn weights_steer_mass() {
        let d = Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap();
        let left = Component::Uniform {
            rect: Rect::new(0.0, 0.0, 1.0, 10.0).unwrap(),
        };
        let right = Component::Uniform {
            rect: Rect::new(9.0, 0.0, 10.0, 10.0).unwrap(),
        };
        let mix = ClusterMixture::new(d, vec![(left, 9.0), (right, 1.0)]).unwrap();
        let ds = mix.sample(10_000, &mut rng(3));
        let left_count = ds.points().iter().filter(|p| p.x < 1.0).count();
        let frac = left_count as f64 / ds.len() as f64;
        assert!((frac - 0.9).abs() < 0.02, "left fraction {frac}");
    }

    #[test]
    fn normal_pair_moments() {
        let mut r = rng(17);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let (a, b) = standard_normal_pair(&mut r);
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let mean = sum / (2 * n) as f64;
        let var = sum_sq / (2 * n) as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
