//! The versioned wire protocol of the serving API.
//!
//! Transports exchange single-line JSON frames: a [`WireRequest`] in,
//! a [`WireResponse`] out, both carrying [`PROTOCOL_VERSION`] so
//! incompatible peers fail fast with a typed error instead of
//! mis-decoding each other. The module is transport-agnostic — it
//! defines the frame types, their validation, and
//! [`handle_frame`], which dispatches one decoded frame against any
//! [`QueryService`]; the `dpgrid-net` crate supplies the TCP framing
//! around it.
//!
//! # Boundary validation
//!
//! Query rectangles arrive as raw [`WireRect`] coordinates and are
//! validated **here**, at the API boundary: NaN or infinite
//! coordinates and inverted (`min > max`) rectangles are rejected with
//! [`ErrorCode::InvalidQuery`] before anything reaches the engine, so
//! the serving core only ever sees well-formed [`Rect`]s.
//!
//! # Error codes
//!
//! Failures travel as [`WireError`] with a stable [`ErrorCode`], so
//! clients can branch without parsing messages: `UnknownKey` (wrong
//! release), `InvalidQuery` (malformed rectangle), `Overloaded`
//! (admission control shed the request — back off and retry),
//! `MalformedRequest` (frame did not parse), `UnsupportedVersion`
//! (protocol mismatch) and `Internal` (server-side failure). Codes are
//! serialised as their variant names; new codes may be added, but
//! existing names never change meaning.
//!
//! # Versioning policy
//!
//! [`PROTOCOL_VERSION`] bumps on any incompatible change (renamed
//! fields, changed semantics, removed variants). Peers reject frames
//! from other versions with `UnsupportedVersion`; additive request
//! kinds within a version are decoded as `MalformedRequest` by older
//! servers, which clients must treat as "feature unsupported".
//!
//! # Two codecs, one protocol
//!
//! The frame *types* above are codec-agnostic. Two encodings carry
//! them:
//!
//! * **JSON v1** — single-line JSON frames (this module's
//!   `encode`/`decode`), the format every peer speaks on connect.
//! * **Binary v2** — length-prefixed binary frames ([`binary`]),
//!   negotiated per connection: a client offers v2 with a
//!   [`RequestBody::Hello`] JSON frame, the server answers
//!   [`ResponseBody::Hello`] with the version both sides will speak
//!   (see [`negotiate`]), and when that is 2 the *same connection*
//!   switches to binary framing for every subsequent frame. `Hello` is
//!   additive within v1: a pre-`Hello` server answers it with
//!   `MalformedRequest`, which clients treat as "v1 only" and fall
//!   back — old clients and old servers interoperate with new ones in
//!   both directions. Negotiation frames themselves always travel as
//!   JSON v1.
//!
//! Dispatch is codec-generic: both codecs decode into the same
//! [`RequestBody`], go through the same [`dispatch`] (one validation
//! path, one [`ErrorCode`] table), and encode the same
//! [`ResponseBody`].

use dpgrid_geo::Rect;
use serde::{Deserialize, Serialize};

use crate::catalog::CacheState;
use crate::engine::{EngineStats, QueryRequest, QueryResponse};
use crate::error::ServeError;
use crate::report::ReportBatch;
use crate::service::QueryService;

pub mod binary;

/// Version of the JSON line frame format defined by this module —
/// the codec every peer speaks on connect. Incompatible changes bump
/// it; both sides reject other versions. The binary codec is
/// [`binary::PROTOCOL_VERSION`] (2), reached only through [`Hello`]
/// negotiation.
///
/// [`Hello`]: RequestBody::Hello
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one encoded frame's bytes (newline included), in
/// both directions. Servers reject (and close) connections whose
/// inbound frame grows past it; clients refuse to *send* a larger
/// frame with a typed error instead of letting the server slam the
/// door mid-write — the two sides share this constant so an
/// admissible-but-huge batch fails fast and attributably at the
/// sender. Generous: the largest legitimate frames (multi-thousand-
/// rect batches) are well under 1 MiB.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// A rectangle as raw wire coordinates, **not yet validated**.
///
/// The half-open `[x0, x1) × [y0, y1)` convention matches [`Rect`];
/// [`WireRect::validate`] is the only path from the wire into the
/// typed geometry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireRect {
    /// Lower x edge.
    pub x0: f64,
    /// Lower y edge.
    pub y0: f64,
    /// Upper x edge (exclusive).
    pub x1: f64,
    /// Upper y edge (exclusive).
    pub y1: f64,
}

impl WireRect {
    /// Validates the raw coordinates into a [`Rect`], rejecting NaN,
    /// infinite and inverted (`min > max`) rectangles with
    /// [`ServeError::InvalidQuery`].
    pub fn validate(&self) -> crate::Result<Rect> {
        Rect::new(self.x0, self.y0, self.x1, self.y1)
            .map_err(|e| ServeError::InvalidQuery(e.to_string()))
    }
}

impl From<&Rect> for WireRect {
    fn from(r: &Rect) -> Self {
        WireRect {
            x0: r.x0(),
            y0: r.y0(),
            x1: r.x1(),
            y1: r.y1(),
        }
    }
}

/// One release query as it travels on the wire: a key plus raw
/// rectangles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireQuery {
    /// Catalog key of the release to answer from.
    pub release_key: String,
    /// Query rectangles, answered in order.
    pub rects: Vec<WireRect>,
}

/// A sliding-window query as it travels on the wire: a keyspace, a
/// half-open epoch range, and raw rectangles. Epoch indices — not raw
/// timestamps — cross the wire; clients convert wall-clock windows at
/// the edge via [`dpgrid_core::EpochLayout::window`], which implements
/// the outward-widening epoch-granularity contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireWindow {
    /// The keyspace whose epoch releases are summed.
    pub keyspace: String,
    /// First epoch of the window.
    pub epoch_start: u64,
    /// One past the last epoch of the window (must be `> epoch_start`).
    pub epoch_end: u64,
    /// Query rectangles, answered in order.
    pub rects: Vec<WireRect>,
}

impl WireWindow {
    /// Builds the wire form of an in-process
    /// [`WindowQuery`](crate::window::WindowQuery).
    pub fn from_query(query: &crate::window::WindowQuery) -> Self {
        WireWindow {
            keyspace: query.keyspace.clone(),
            epoch_start: query.range.start,
            epoch_end: query.range.end,
            rects: query.rects.iter().map(WireRect::from).collect(),
        }
    }

    /// Validates the raw window into a typed
    /// [`WindowQuery`](crate::window::WindowQuery): the epoch range
    /// must be non-empty and every rectangle well-formed, rejected
    /// with [`ServeError::InvalidQuery`] otherwise.
    pub fn validate(&self) -> crate::Result<crate::window::WindowQuery> {
        let range =
            dpgrid_core::EpochRange::new(self.epoch_start, self.epoch_end).ok_or_else(|| {
                ServeError::InvalidQuery(format!(
                    "window epoch range [{}, {}) is empty",
                    self.epoch_start, self.epoch_end
                ))
            })?;
        let mut rects = Vec::with_capacity(self.rects.len());
        for (i, r) in self.rects.iter().enumerate() {
            rects.push(r.validate().map_err(|e| match e {
                ServeError::InvalidQuery(why) => {
                    ServeError::InvalidQuery(format!("rect #{i}: {why}"))
                }
                other => other,
            })?);
        }
        Ok(crate::window::WindowQuery {
            keyspace: self.keyspace.clone(),
            range,
            rects,
        })
    }
}

/// One covered epoch range inside a [`WireWindowAnswers`], as plain
/// wire integers (half-open, `start < end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireEpochSpan {
    /// First epoch covered.
    pub start: u64,
    /// One past the last epoch covered.
    pub end: u64,
}

/// The answers to one [`WireWindow`]: element-wise sums over the
/// covered epoch surfaces plus exactly which ranges those were (a
/// window straddling a compacted tier visibly widens here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireWindowAnswers {
    /// The queried keyspace.
    pub keyspace: String,
    /// Epoch ranges actually summed, ascending and disjoint.
    pub covered: Vec<WireEpochSpan>,
    /// One summed estimate per requested rectangle, same order.
    pub answers: Vec<f64>,
}

impl WireWindowAnswers {
    /// Builds the wire form of an in-process
    /// [`WindowAnswer`](crate::window::WindowAnswer).
    pub fn from_answer(answer: &crate::window::WindowAnswer) -> Self {
        WireWindowAnswers {
            keyspace: answer.keyspace.clone(),
            covered: answer
                .covered
                .iter()
                .map(|r| WireEpochSpan {
                    start: r.start,
                    end: r.end,
                })
                .collect(),
            answers: answer.answers.clone(),
        }
    }

    /// The in-process answer this frame carries. Fails with
    /// [`ServeError::InvalidQuery`] when a span is empty or inverted
    /// (a malformed peer; typed ranges cannot represent it).
    pub fn into_answer(self) -> crate::Result<crate::window::WindowAnswer> {
        let mut covered = Vec::with_capacity(self.covered.len());
        for span in &self.covered {
            covered.push(
                dpgrid_core::EpochRange::new(span.start, span.end).ok_or_else(|| {
                    ServeError::InvalidQuery(format!(
                        "covered span [{}, {}) is empty",
                        span.start, span.end
                    ))
                })?,
            );
        }
        Ok(crate::window::WindowAnswer {
            keyspace: self.keyspace,
            covered,
            answers: self.answers,
        })
    }
}

impl WireQuery {
    /// Builds the wire form of an in-process [`QueryRequest`].
    pub fn from_request(request: &QueryRequest) -> Self {
        WireQuery {
            release_key: request.release_key.clone(),
            rects: request.rects.iter().map(WireRect::from).collect(),
        }
    }

    /// Validates every rectangle, producing the typed in-process
    /// request. Fails on the first invalid rectangle with its index.
    pub fn validate(&self) -> crate::Result<QueryRequest> {
        let mut rects = Vec::with_capacity(self.rects.len());
        for (i, r) in self.rects.iter().enumerate() {
            rects.push(r.validate().map_err(|e| match e {
                // Re-wrap the inner detail with the rect index rather
                // than nesting two "invalid query:" display prefixes.
                ServeError::InvalidQuery(why) => {
                    ServeError::InvalidQuery(format!("rect #{i}: {why}"))
                }
                other => other,
            })?);
        }
        Ok(QueryRequest::new(self.release_key.clone(), rects))
    }
}

/// One batch of locally-perturbed frequency-oracle reports, as it
/// travels in a [`RequestBody::Report`] frame — the protocol's first
/// mutating request kind.
///
/// The shape is deliberately flat (an `oracle` tag plus per-family
/// fields) rather than an enum, so the JSON form stays simple and the
/// binary codec can pack the report vector contiguously. Exactly one
/// family's fields may be populated; [`WireReportBatch::validate`]
/// enforces that, every index/shape bound, and ε sanity **before**
/// anything reaches a collector.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReportBatch {
    /// The keyspace the sealed epoch will publish under.
    pub keyspace: String,
    /// The collection epoch the reports belong to.
    pub epoch: u64,
    /// The per-report ε the clients perturbed at.
    pub epsilon: f64,
    /// The grid domain size `k` the reports cover.
    pub cells: u32,
    /// Which oracle family produced the reports: `"grr"` or `"oue"`.
    pub oracle: String,
    /// GRR only: one perturbed cell index per report.
    pub grr: Vec<u32>,
    /// OUE only: number of reports packed into `oue_bits`.
    pub oue_count: u32,
    /// OUE only: `oue_count × ⌈cells/64⌉` packed words, report-major.
    pub oue_bits: Vec<u64>,
}

// `WireReportBatch` is the one frame that carries full-range `u64`
// payload words: OUE bit vectors use all 64 bits, while JSON numbers
// are only exact up to 2^53. The serde impls are therefore written by
// hand so `oue_bits` travels as one lowercase hex string (16 digits
// per word, report-major) and survives the JSON codec bit-for-bit;
// every other field fits the numeric contract and keeps its plain
// representation. The binary codec encodes the words raw and never
// sees this form.
impl Serialize for WireReportBatch {
    fn serialize_value(&self) -> serde::Value {
        use std::fmt::Write as _;
        let mut hex = String::with_capacity(self.oue_bits.len() * 16);
        for word in &self.oue_bits {
            let _ = write!(hex, "{word:016x}");
        }
        serde::Value::Obj(vec![
            ("keyspace".to_string(), self.keyspace.serialize_value()),
            ("epoch".to_string(), self.epoch.serialize_value()),
            ("epsilon".to_string(), self.epsilon.serialize_value()),
            ("cells".to_string(), self.cells.serialize_value()),
            ("oracle".to_string(), self.oracle.serialize_value()),
            ("grr".to_string(), self.grr.serialize_value()),
            ("oue_count".to_string(), self.oue_count.serialize_value()),
            ("oue_bits".to_string(), serde::Value::Str(hex)),
        ])
    }
}

impl Deserialize for WireReportBatch {
    fn deserialize_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let obj = v.as_obj().ok_or_else(|| {
            serde::Error::msg(format!(
                "WireReportBatch: expected object, got {}",
                v.kind()
            ))
        })?;
        let hex: String = serde::field_aliased_or_default(obj, &["oue_bits"], "WireReportBatch")?;
        if !hex.len().is_multiple_of(16) {
            return Err(serde::Error::msg(format!(
                "WireReportBatch: oue_bits hex length {} is not a multiple of 16",
                hex.len()
            )));
        }
        let mut oue_bits = Vec::with_capacity(hex.len() / 16);
        for chunk in hex.as_bytes().chunks_exact(16) {
            let digits = std::str::from_utf8(chunk)
                .map_err(|_| serde::Error::msg("WireReportBatch: oue_bits is not ASCII hex"))?;
            let word = u64::from_str_radix(digits, 16).map_err(|_| {
                serde::Error::msg(format!(
                    "WireReportBatch: oue_bits contains non-hex word {digits:?}"
                ))
            })?;
            oue_bits.push(word);
        }
        Ok(WireReportBatch {
            keyspace: serde::field(obj, "keyspace", "WireReportBatch")?,
            epoch: serde::field(obj, "epoch", "WireReportBatch")?,
            epsilon: serde::field(obj, "epsilon", "WireReportBatch")?,
            cells: serde::field(obj, "cells", "WireReportBatch")?,
            oracle: serde::field(obj, "oracle", "WireReportBatch")?,
            grr: serde::field_aliased_or_default(obj, &["grr"], "WireReportBatch")?,
            oue_count: serde::field_aliased_or_default(obj, &["oue_count"], "WireReportBatch")?,
            oue_bits,
        })
    }
}

impl WireReportBatch {
    /// Builds the wire form of a typed [`ReportBatch`].
    pub fn from_batch(batch: &ReportBatch) -> Self {
        let mut wire = WireReportBatch {
            keyspace: batch.keyspace.clone(),
            epoch: batch.epoch,
            epsilon: batch.epsilon,
            cells: batch.cells,
            oracle: String::new(),
            grr: Vec::new(),
            oue_count: 0,
            oue_bits: Vec::new(),
        };
        match &batch.payload {
            crate::report::ReportPayload::Grr(cells) => {
                wire.oracle = "grr".to_string();
                wire.grr = cells.clone();
            }
            crate::report::ReportPayload::Oue { count, bits } => {
                wire.oracle = "oue".to_string();
                wire.oue_count = *count;
                wire.oue_bits = bits.clone();
            }
        }
        wire
    }

    /// Validates shape, bounds and ε, producing the typed in-process
    /// batch. Every rejection is [`ServeError::InvalidQuery`] — typed,
    /// attributable, and raised before the collector sees anything.
    pub fn validate(&self) -> crate::Result<ReportBatch> {
        let bad = |why: String| Err(ServeError::InvalidQuery(why));
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return bad(format!(
                "report epsilon must be finite and positive, got {}",
                self.epsilon
            ));
        }
        if self.cells < 2 || self.cells as usize > dpgrid_geo::MAX_GRID_CELLS {
            return bad(format!(
                "report domain needs 2..={} cells, got {}",
                dpgrid_geo::MAX_GRID_CELLS,
                self.cells
            ));
        }
        let payload = match self.oracle.as_str() {
            "grr" => {
                if self.oue_count != 0 || !self.oue_bits.is_empty() {
                    return bad("GRR batch carries OUE fields".to_string());
                }
                if let Some(&c) = self.grr.iter().find(|&&c| c >= self.cells) {
                    return bad(format!(
                        "GRR report names cell {c}, outside the {}-cell domain",
                        self.cells
                    ));
                }
                crate::report::ReportPayload::Grr(self.grr.clone())
            }
            "oue" => {
                if !self.grr.is_empty() {
                    return bad("OUE batch carries GRR fields".to_string());
                }
                let words = (self.cells as usize).div_ceil(64);
                let expect = (self.oue_count as usize).checked_mul(words);
                if expect != Some(self.oue_bits.len()) {
                    return bad(format!(
                        "OUE batch of {} reports over {} cells needs {} words, got {}",
                        self.oue_count,
                        self.cells,
                        self.oue_count as usize * words,
                        self.oue_bits.len()
                    ));
                }
                // Bits past the domain in each report's last word are
                // hostile: they would smuggle tallies out of range.
                let tail = self.cells as usize % 64;
                if tail != 0
                    && self
                        .oue_bits
                        .iter()
                        .skip(words - 1)
                        .step_by(words)
                        .any(|&w| w >> tail != 0)
                {
                    return bad(format!(
                        "OUE report sets bits past the {}-cell domain",
                        self.cells
                    ));
                }
                crate::report::ReportPayload::Oue {
                    count: self.oue_count,
                    bits: self.oue_bits.clone(),
                }
            }
            other => {
                return bad(format!(
                    "unknown report oracle {other:?} (expected \"grr\" or \"oue\")"
                ))
            }
        };
        Ok(ReportBatch {
            keyspace: self.keyspace.clone(),
            epoch: self.epoch,
            epsilon: self.epsilon,
            cells: self.cells,
            payload,
        })
    }
}

/// The receipt for an accepted report batch, as it travels in a
/// [`ResponseBody::Report`] frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireReportAck {
    /// Echo of the batch's keyspace.
    pub keyspace: String,
    /// Echo of the batch's epoch.
    pub epoch: u64,
    /// Reports folded in by this batch.
    pub accepted: u64,
    /// Total reports the `(keyspace, epoch)` accumulator now holds.
    pub epoch_total: u64,
}

impl WireReportAck {
    /// Builds the wire form of a typed [`crate::ReportAck`].
    pub fn from_ack(ack: &crate::report::ReportAck) -> Self {
        WireReportAck {
            keyspace: ack.keyspace.clone(),
            epoch: ack.epoch,
            accepted: ack.accepted,
            epoch_total: ack.epoch_total,
        }
    }

    /// The typed receipt this frame carries.
    pub fn into_ack(self) -> crate::report::ReportAck {
        crate::report::ReportAck {
            keyspace: self.keyspace,
            epoch: self.epoch,
            accepted: self.accepted,
            epoch_total: self.epoch_total,
        }
    }
}

/// A client's codec offer: the highest protocol version it speaks.
/// Travels inside [`RequestBody::Hello`], always as JSON v1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloOffer {
    /// Highest protocol version the client can speak (≥ 1).
    pub max_version: u32,
}

/// The server's negotiation answer: the version both sides will speak
/// from the next frame on. Travels inside [`ResponseBody::Hello`],
/// always as JSON v1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloAck {
    /// The negotiated protocol version (see [`negotiate`]).
    pub version: u32,
}

/// The payload of one request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Answer one release query.
    Query(WireQuery),
    /// Answer several queries (possibly across releases) in one round
    /// trip; per-query failures are isolated in the response.
    Batch(Vec<WireQuery>),
    /// Report [`EngineStats`].
    Stats,
    /// List the service's advertised release keys (sorted), answered
    /// with [`ResponseBody::Keys`]. Added within protocol version 1:
    /// per the versioning policy, a pre-`Keys` server answers it with
    /// `MalformedRequest`, which clients treat as "feature
    /// unsupported".
    Keys,
    /// Answer a sliding-window query over a keyspace's epoch-sliced
    /// releases (see [`crate::window`]), answered with
    /// [`ResponseBody::Window`]. Added within protocol version 1,
    /// same policy as `Keys`: a pre-`Window` server answers it with
    /// `MalformedRequest`.
    Window(WireWindow),
    /// Liveness / protocol check; answered with
    /// [`ResponseBody::Pong`].
    Ping,
    /// Offer to upgrade this connection's codec, answered with
    /// [`ResponseBody::Hello`]. Added within protocol version 1: a
    /// pre-`Hello` server answers it with `MalformedRequest`, which
    /// clients treat as "v1 only". Transports that support binary
    /// framing intercept this frame themselves (the negotiated codec
    /// is connection state, which [`dispatch`] does not hold); at the
    /// dispatch layer it always acks version 1.
    Hello(HelloOffer),
    /// Upload a batch of locally-perturbed LDP reports — the
    /// protocol's first **mutating** request — answered with
    /// [`ResponseBody::Report`]. Added within protocol version 1,
    /// same policy as `Keys`: a pre-`Report` server (or a server
    /// whose service is read-only) answers it with
    /// `MalformedRequest`, which clients treat as "feature
    /// unsupported".
    Report(WireReportBatch),
}

/// One request frame: version, client-chosen correlation id, payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Must equal [`PROTOCOL_VERSION`].
    pub protocol_version: u32,
    /// Echoed verbatim in the response so clients can correlate over
    /// pipelined connections. Must stay within the JSON safe-integer
    /// range (`0 ..= 2⁵³`): JSON numbers travel as IEEE-754 doubles —
    /// here and in JavaScript peers alike — so larger ids would round
    /// in transit and fail the echo check. Sequential ids (what
    /// `dpgrid-net`'s client uses) never get anywhere near the limit.
    pub id: u64,
    /// The payload.
    pub body: RequestBody,
}

/// The answers to one [`WireQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireAnswers {
    /// Key the query was routed to.
    pub release_key: String,
    /// Version of the release that answered.
    pub version: u64,
    /// Whether the compiled surface was resident on arrival.
    pub cache: CacheState,
    /// One estimate per requested rectangle, same order.
    pub answers: Vec<f64>,
}

impl WireAnswers {
    /// Builds the wire form of an in-process [`QueryResponse`].
    pub fn from_response(response: &QueryResponse) -> Self {
        WireAnswers {
            release_key: response.release_key.clone(),
            version: response.version,
            cache: response.cache,
            answers: response.answers.clone(),
        }
    }

    /// The in-process response this frame carries.
    pub fn into_response(self) -> QueryResponse {
        QueryResponse {
            release_key: self.release_key,
            version: self.version,
            cache: self.cache,
            answers: self.answers,
        }
    }
}

/// Outcome of one query inside a [`RequestBody::Batch`] — failures are
/// isolated per query, mirroring the engine's batch contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireOutcome {
    /// The query was answered.
    Answered(WireAnswers),
    /// The query failed with a typed error.
    Failed(WireError),
}

/// The payload of one response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Answers to a [`RequestBody::Query`].
    Answers(WireAnswers),
    /// Per-query outcomes of a [`RequestBody::Batch`], in order.
    Batch(Vec<WireOutcome>),
    /// The service's counters ([`RequestBody::Stats`]).
    Stats(EngineStats),
    /// The service's advertised release keys ([`RequestBody::Keys`]).
    Keys(Vec<String>),
    /// Summed window answers to a [`RequestBody::Window`].
    Window(WireWindowAnswers),
    /// Reply to [`RequestBody::Ping`].
    Pong,
    /// The negotiation answer to a [`RequestBody::Hello`].
    Hello(HelloAck),
    /// The receipt for an accepted [`RequestBody::Report`] batch.
    Report(WireReportAck),
    /// The whole frame failed.
    Error(WireError),
}

/// One response frame: version, echoed request id, payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// The server's [`PROTOCOL_VERSION`].
    pub protocol_version: u32,
    /// The request's id (0 when the request was too malformed to carry
    /// one). Subject to the same JSON safe-integer range as
    /// [`WireRequest::id`].
    pub id: u64,
    /// The payload.
    pub body: ResponseBody,
}

/// Stable, machine-readable failure categories. Serialised as the
/// variant names; meanings never change within a protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The named release key is not in the catalog.
    UnknownKey,
    /// A query rectangle failed boundary validation (NaN, infinite or
    /// inverted coordinates).
    InvalidQuery,
    /// Admission control shed the request; back off and retry.
    Overloaded,
    /// The frame was not a valid request of this protocol.
    MalformedRequest,
    /// The frame's `protocol_version` differs from the peer's.
    UnsupportedVersion,
    /// A server-side failure unrelated to the request's content.
    Internal,
}

impl ErrorCode {
    /// The stable wire name of the code (identical to the serialised
    /// form — the `error_codes_have_stable_wire_names` regression in
    /// `tests/wire_protocol.rs` pins the two against each other, so a
    /// variant rename cannot silently diverge from these strings).
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::UnknownKey => "UnknownKey",
            ErrorCode::InvalidQuery => "InvalidQuery",
            ErrorCode::Overloaded => "Overloaded",
            ErrorCode::MalformedRequest => "MalformedRequest",
            ErrorCode::UnsupportedVersion => "UnsupportedVersion",
            ErrorCode::Internal => "Internal",
        }
    }
}

/// Machine-readable overload pressure attached to
/// [`ErrorCode::Overloaded`] errors, so remote callers (and the shard
/// router's error mapping) see the server's real counters instead of
/// scraping them out of the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverloadInfo {
    /// Rectangles in flight when the request was shed.
    pub inflight_rects: u64,
    /// The shedding engine's in-flight rectangle budget.
    pub limit: u64,
}

/// A typed wire-level failure: a stable [`ErrorCode`] for branching
/// plus a human-readable message for logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// The stable failure category.
    pub code: ErrorCode,
    /// Human-readable detail; not part of the stability contract.
    pub message: String,
    /// Structured counters, present when `code` is
    /// [`ErrorCode::Overloaded`]. Added within protocol version 1:
    /// struct decoding ignores unknown fields and defaults missing
    /// ones, so frames exchange cleanly with pre-`overload` peers
    /// (whose errors simply carry `None`).
    #[serde(default)]
    pub overload: Option<OverloadInfo>,
}

impl WireError {
    /// A new error with the given code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
            overload: None,
        }
    }

    /// Maps a service-side [`ServeError`] onto its wire code. Errors a
    /// remote client cannot act on (I/O, release validation) collapse
    /// into [`ErrorCode::Internal`]; overload errors carry their
    /// counters structured (see [`OverloadInfo`]).
    pub fn from_serve(e: &ServeError) -> Self {
        let code = match e {
            ServeError::UnknownRelease(_) => ErrorCode::UnknownKey,
            ServeError::InvalidQuery(_) => ErrorCode::InvalidQuery,
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            // An unreachable shard behind a router is, to a remote
            // client, indistinguishable from any other server-side
            // failure; the message keeps the detail.
            ServeError::Unavailable { .. }
            | ServeError::InvalidKey(_)
            | ServeError::Io { .. }
            | ServeError::Load { .. }
            | ServeError::Core(_) => ErrorCode::Internal,
        };
        let mut error = WireError::new(code, e.to_string());
        if let ServeError::Overloaded {
            inflight_rects,
            limit,
        } = e
        {
            error.overload = Some(OverloadInfo {
                inflight_rects: *inflight_rects,
                limit: *limit,
            });
        }
        error
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

/// A decode failure plus the best-effort request id salvaged from the
/// frame, so the error response still correlates when possible.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// The frame's `id` field when it could be read, 0 otherwise.
    pub id: u64,
    /// The typed failure.
    pub error: WireError,
}

/// Best-effort envelope probe used to salvage `id`/`protocol_version`
/// from frames that fail full decoding. `protocol_version` is an
/// `Option` so a frame that simply *omits* the field is classified as
/// malformed, not as a version mismatch — only a frame that actually
/// declares a different version earns `UnsupportedVersion`.
#[derive(Debug, Default, Serialize, Deserialize)]
struct EnvelopeProbe {
    #[serde(default)]
    protocol_version: Option<u32>,
    #[serde(default)]
    id: u64,
}

/// Salvages the envelope of a frame whose full decode failed. An
/// unparseable line yields the defaults (id 0, no declared version —
/// reported as malformed, not as a version mismatch, because nothing
/// was read).
fn probe(line: &str) -> EnvelopeProbe {
    serde_json::from_str(line).unwrap_or_default()
}

/// Checks a decoded frame's version, classifying mismatches.
fn check_version(version: u32, id: u64) -> Result<(), DecodeError> {
    if version == PROTOCOL_VERSION {
        Ok(())
    } else {
        Err(DecodeError {
            id,
            error: WireError::new(
                ErrorCode::UnsupportedVersion,
                format!("frame speaks protocol {version}, this peer speaks {PROTOCOL_VERSION}"),
            ),
        })
    }
}

/// The shared decode policy of both frame directions: full parse, then
/// version check; on parse failure salvage the envelope, classify a
/// *declared* foreign version as `UnsupportedVersion`, and report
/// everything else as `MalformedRequest` under the given frame kind.
fn decode_frame<T: serde::Deserialize>(
    line: &str,
    kind: &str,
    envelope: impl Fn(&T) -> (u32, u64),
) -> Result<T, DecodeError> {
    match serde_json::from_str::<T>(line) {
        Ok(frame) => {
            let (version, id) = envelope(&frame);
            check_version(version, id)?;
            Ok(frame)
        }
        Err(e) => {
            let salvaged = probe(line);
            if let Some(version) = salvaged.protocol_version {
                check_version(version, salvaged.id)?;
            }
            Err(DecodeError {
                id: salvaged.id,
                error: WireError::new(
                    ErrorCode::MalformedRequest,
                    format!("unparseable {kind} frame: {e}"),
                ),
            })
        }
    }
}

impl WireRequest {
    /// A request frame at the current [`PROTOCOL_VERSION`].
    pub fn new(id: u64, body: RequestBody) -> Self {
        WireRequest {
            protocol_version: PROTOCOL_VERSION,
            id,
            body,
        }
    }

    /// Serialises to a single JSON line (no trailing newline). JSON
    /// string escaping guarantees the output contains no raw newline,
    /// so frames stay newline-delimited whatever keys they carry.
    pub fn encode(&self) -> String {
        serde_json::to_string(self).expect("wire frames always serialise")
    }

    /// Parses one frame, distinguishing malformed JSON
    /// ([`ErrorCode::MalformedRequest`]) from a version mismatch
    /// ([`ErrorCode::UnsupportedVersion`]).
    pub fn decode(line: &str) -> Result<Self, DecodeError> {
        decode_frame(line, "request", |req: &WireRequest| {
            (req.protocol_version, req.id)
        })
    }
}

impl WireResponse {
    /// A response frame at the current [`PROTOCOL_VERSION`].
    pub fn new(id: u64, body: ResponseBody) -> Self {
        WireResponse {
            protocol_version: PROTOCOL_VERSION,
            id,
            body,
        }
    }

    /// An error frame.
    pub fn error(id: u64, error: WireError) -> Self {
        WireResponse::new(id, ResponseBody::Error(error))
    }

    /// Serialises to a single JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        serde_json::to_string(self).expect("wire frames always serialise")
    }

    /// Parses one response frame (the client side of
    /// [`WireRequest::decode`]).
    pub fn decode(line: &str) -> Result<Self, DecodeError> {
        decode_frame(line, "response", |resp: &WireResponse| {
            (resp.protocol_version, resp.id)
        })
    }
}

/// Picks the protocol version two peers will speak: the highest both
/// support, never below the baseline [`PROTOCOL_VERSION`] every peer
/// speaks (a nonsense offer of 0 still negotiates to 1).
pub fn negotiate(client_max: u32, server_max: u32) -> u32 {
    client_max.min(server_max).max(PROTOCOL_VERSION)
}

/// Decodes `line` as a [`RequestBody::Hello`] offer, returning its
/// `(id, max_version)`. `None` for anything else — including frames
/// that fail to decode, which the caller hands to [`handle_frame`] for
/// the usual typed error. Transports with a binary mode call this on
/// each JSON line *before* [`handle_frame`], because switching codecs
/// is connection state only the transport holds.
pub fn parse_hello(line: &str) -> Option<(u64, u32)> {
    match WireRequest::decode(line) {
        Ok(WireRequest {
            id,
            body: RequestBody::Hello(offer),
            ..
        }) => Some((id, offer.max_version)),
        _ => None,
    }
}

/// The negotiation answer a transport sends after [`parse_hello`].
pub fn hello_ack(id: u64, version: u32) -> WireResponse {
    WireResponse::new(id, ResponseBody::Hello(HelloAck { version }))
}

/// Decodes one request line, dispatches it against `service`, and
/// produces the response frame — the complete server-side protocol
/// step minus transport framing. Every failure becomes a typed
/// [`ResponseBody::Error`]; this function never panics on untrusted
/// input.
pub fn handle_frame<S: QueryService + ?Sized>(service: &S, line: &str) -> WireResponse {
    let request = match WireRequest::decode(line) {
        Ok(request) => request,
        Err(e) => return WireResponse::error(e.id, e.error),
    };
    dispatch(service, request.id, request.body)
}

/// Dispatches one decoded request body against `service` — the
/// codec-generic core shared by the JSON ([`handle_frame`]) and binary
/// ([`binary`]) paths, so both codecs validate, answer, and map errors
/// identically. Never panics on untrusted input.
pub fn dispatch<S: QueryService + ?Sized>(service: &S, id: u64, body: RequestBody) -> WireResponse {
    match body {
        RequestBody::Ping => WireResponse::new(id, ResponseBody::Pong),
        // The dispatch layer cannot switch framing, so it caps the
        // negotiation at the JSON baseline; binary-capable transports
        // intercept Hello before dispatch ever sees it.
        RequestBody::Hello(offer) => hello_ack(id, negotiate(offer.max_version, PROTOCOL_VERSION)),
        RequestBody::Stats => WireResponse::new(id, ResponseBody::Stats(service.stats())),
        RequestBody::Keys => WireResponse::new(id, ResponseBody::Keys(service.keys())),
        RequestBody::Report(batch) => match service.reports() {
            // A read-only service answers exactly like a pre-`Report`
            // server: same code, same client fallback.
            None => WireResponse::error(
                id,
                WireError::new(
                    ErrorCode::MalformedRequest,
                    "unsupported request kind: this server accepts no reports",
                ),
            ),
            Some(sink) => match batch.validate() {
                Err(e) => WireResponse::error(id, WireError::from_serve(&e)),
                Ok(typed) => match sink.submit_reports(&typed) {
                    Ok(ack) => {
                        WireResponse::new(id, ResponseBody::Report(WireReportAck::from_ack(&ack)))
                    }
                    Err(e) => WireResponse::error(id, WireError::from_serve(&e)),
                },
            },
        },
        RequestBody::Window(window) => match window.validate() {
            Err(e) => WireResponse::error(id, WireError::from_serve(&e)),
            Ok(query) => match crate::window::answer_window(service, &query) {
                Ok(answer) => WireResponse::new(
                    id,
                    ResponseBody::Window(WireWindowAnswers::from_answer(&answer)),
                ),
                Err(e) => WireResponse::error(id, WireError::from_serve(&e)),
            },
        },
        RequestBody::Query(query) => match query.validate() {
            Err(e) => WireResponse::error(id, WireError::from_serve(&e)),
            Ok(request) => {
                let mut results = service.answer_batch(std::slice::from_ref(&request));
                match results.pop() {
                    Some(Ok(response)) => WireResponse::new(
                        id,
                        ResponseBody::Answers(WireAnswers::from_response(&response)),
                    ),
                    Some(Err(e)) => WireResponse::error(id, WireError::from_serve(&e)),
                    None => WireResponse::error(
                        id,
                        WireError::new(ErrorCode::Internal, "service returned no response"),
                    ),
                }
            }
        },
        RequestBody::Batch(queries) => {
            // Invalid queries fail in place; the valid remainder goes
            // to the service as one batch, preserving order.
            let mut outcomes: Vec<Option<WireOutcome>> = Vec::with_capacity(queries.len());
            let mut admitted = Vec::new();
            for query in &queries {
                match query.validate() {
                    Ok(request) => {
                        outcomes.push(None);
                        admitted.push(request);
                    }
                    Err(e) => {
                        outcomes.push(Some(WireOutcome::Failed(WireError::from_serve(&e))));
                    }
                }
            }
            let mut results = service.answer_batch(&admitted).into_iter();
            for slot in &mut outcomes {
                if slot.is_none() {
                    *slot = Some(match results.next() {
                        Some(Ok(response)) => {
                            WireOutcome::Answered(WireAnswers::from_response(&response))
                        }
                        Some(Err(e)) => WireOutcome::Failed(WireError::from_serve(&e)),
                        None => WireOutcome::Failed(WireError::new(
                            ErrorCode::Internal,
                            "service returned too few responses",
                        )),
                    });
                }
            }
            WireResponse::new(
                id,
                ResponseBody::Batch(
                    outcomes
                        .into_iter()
                        .map(|o| o.expect("every slot filled"))
                        .collect(),
                ),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Catalog, QueryEngine};
    use dpgrid_core::{Method, Pipeline};
    use dpgrid_geo::generators::PaperDataset;

    fn engine() -> QueryEngine {
        let ds = PaperDataset::Storage.generate_n(11, 1_500).unwrap();
        let mut catalog = Catalog::new();
        for (key, seed) in [("a", 1u64), ("b", 2)] {
            Pipeline::new(&ds)
                .method(Method::ug(8))
                .seed(seed)
                .publish_into(&mut catalog, key)
                .unwrap();
        }
        QueryEngine::new(catalog)
    }

    fn query(key: &str, rects: &[(f64, f64, f64, f64)]) -> WireQuery {
        WireQuery {
            release_key: key.into(),
            rects: rects
                .iter()
                .map(|&(x0, y0, x1, y1)| WireRect { x0, y0, x1, y1 })
                .collect(),
        }
    }

    #[test]
    fn frames_roundtrip_through_json_lines() {
        let request = WireRequest::new(
            7,
            RequestBody::Query(query("a", &[(-120.0, 20.0, -90.0, 40.0)])),
        );
        let line = request.encode();
        assert!(!line.contains('\n'), "frames must stay single-line");
        assert_eq!(WireRequest::decode(&line).unwrap(), request);

        let response = WireResponse::new(
            7,
            ResponseBody::Answers(WireAnswers {
                release_key: "a".into(),
                version: 3,
                cache: CacheState::Warm,
                answers: vec![1.5, 0.25],
            }),
        );
        let line = response.encode();
        assert_eq!(WireResponse::decode(&line).unwrap(), response);
    }

    #[test]
    fn version_mismatch_and_malformed_frames_are_distinguished() {
        let mut request = WireRequest::new(1, RequestBody::Ping);
        request.protocol_version = 999;
        let err = WireRequest::decode(&request.encode()).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::UnsupportedVersion);
        assert_eq!(err.id, 1);

        let err = WireRequest::decode("{not json").unwrap_err();
        assert_eq!(err.error.code, ErrorCode::MalformedRequest);
        assert_eq!(err.id, 0);

        // A parseable envelope with an unparseable body salvages the id.
        let err = WireRequest::decode(r#"{"protocol_version": 1, "id": 42, "body": "Nonsense"}"#)
            .unwrap_err();
        assert_eq!(err.error.code, ErrorCode::MalformedRequest);
        assert_eq!(err.id, 42);

        // A frame that *omits* the version is malformed — only a frame
        // declaring a different version is a version mismatch. Sending
        // operators to chase version skew for a missing field would be
        // wrong on both the request and the response side.
        let err = WireRequest::decode(r#"{"id": 9, "body": "Ping"}"#).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::MalformedRequest);
        assert_eq!(err.id, 9);
        let err = WireResponse::decode(r#"{"id": 9, "body": "Pong"}"#).unwrap_err();
        assert_eq!(err.error.code, ErrorCode::MalformedRequest);
        assert_eq!(err.id, 9);
    }

    #[test]
    fn rect_validation_rejects_each_malformed_shape() {
        for (rect, what) in [
            (
                WireRect {
                    x0: f64::NAN,
                    y0: 0.0,
                    x1: 1.0,
                    y1: 1.0,
                },
                "NaN x0",
            ),
            (
                WireRect {
                    x0: 0.0,
                    y0: f64::NEG_INFINITY,
                    x1: 1.0,
                    y1: 1.0,
                },
                "-inf y0",
            ),
            (
                WireRect {
                    x0: 0.0,
                    y0: 0.0,
                    x1: f64::INFINITY,
                    y1: 1.0,
                },
                "+inf x1",
            ),
            (
                WireRect {
                    x0: 0.0,
                    y0: 0.0,
                    x1: 1.0,
                    y1: f64::NAN,
                },
                "NaN y1",
            ),
            (
                WireRect {
                    x0: 2.0,
                    y0: 0.0,
                    x1: 1.0,
                    y1: 1.0,
                },
                "x0 > x1",
            ),
            (
                WireRect {
                    x0: 0.0,
                    y0: 2.0,
                    x1: 1.0,
                    y1: 1.0,
                },
                "y0 > y1",
            ),
        ] {
            assert!(
                matches!(rect.validate(), Err(ServeError::InvalidQuery(_))),
                "{what} must be rejected"
            );
        }
        // Degenerate-but-ordered rects are legal queries (zero answer).
        assert!(WireRect {
            x0: 1.0,
            y0: 0.0,
            x1: 1.0,
            y1: 1.0,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn handle_frame_dispatches_query_stats_ping() {
        let engine = engine();
        let frame = WireRequest::new(
            1,
            RequestBody::Query(query("a", &[(-130.0, 10.0, -70.0, 50.0)])),
        )
        .encode();
        let response = handle_frame(&engine, &frame);
        assert_eq!(response.id, 1);
        let ResponseBody::Answers(answers) = response.body else {
            panic!("expected answers, got {:?}", response.body);
        };
        assert_eq!(answers.release_key, "a");
        assert_eq!(answers.version, 1);
        assert_eq!(answers.answers.len(), 1);

        let response = handle_frame(&engine, &WireRequest::new(2, RequestBody::Stats).encode());
        let ResponseBody::Stats(stats) = response.body else {
            panic!("expected stats");
        };
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.catalog.releases, 2);

        let response = handle_frame(&engine, &WireRequest::new(3, RequestBody::Ping).encode());
        assert_eq!(response.body, ResponseBody::Pong);

        let response = handle_frame(&engine, &WireRequest::new(4, RequestBody::Keys).encode());
        assert_eq!(
            response.body,
            ResponseBody::Keys(vec!["a".to_string(), "b".to_string()])
        );
    }

    #[test]
    fn handle_frame_maps_typed_errors_onto_stable_codes() {
        let engine = engine();
        // Unknown key.
        let response = handle_frame(
            &engine,
            &WireRequest::new(
                1,
                RequestBody::Query(query("nope", &[(-100.0, 20.0, -90.0, 30.0)])),
            )
            .encode(),
        );
        let ResponseBody::Error(e) = response.body else {
            panic!("expected error");
        };
        assert_eq!(e.code, ErrorCode::UnknownKey);

        // Invalid rect: rejected at the boundary, engine untouched.
        let before = QueryService::stats(&engine).requests;
        let response = handle_frame(
            &engine,
            &WireRequest::new(2, RequestBody::Query(query("a", &[(5.0, 0.0, -5.0, 1.0)]))).encode(),
        );
        let ResponseBody::Error(e) = response.body else {
            panic!("expected error");
        };
        assert_eq!(e.code, ErrorCode::InvalidQuery);
        assert!(e.message.contains("rect #0"));
        assert_eq!(QueryService::stats(&engine).requests, before);
    }

    #[test]
    fn handle_frame_batch_isolates_invalid_and_unknown_queries() {
        let engine = engine();
        let frame = WireRequest::new(
            9,
            RequestBody::Batch(vec![
                query("a", &[(-130.0, 10.0, -70.0, 50.0)]),
                query("a", &[(f64::NAN, 0.0, 1.0, 1.0)]),
                query("missing", &[(-100.0, 20.0, -90.0, 30.0)]),
                query("b", &[(-130.0, 10.0, -70.0, 50.0)]),
            ]),
        )
        .encode();
        let response = handle_frame(&engine, &frame);
        let ResponseBody::Batch(outcomes) = response.body else {
            panic!("expected batch");
        };
        assert_eq!(outcomes.len(), 4);
        assert!(matches!(&outcomes[0], WireOutcome::Answered(a) if a.release_key == "a"));
        assert!(
            matches!(&outcomes[1], WireOutcome::Failed(e) if e.code == ErrorCode::InvalidQuery)
        );
        assert!(matches!(&outcomes[2], WireOutcome::Failed(e) if e.code == ErrorCode::UnknownKey));
        assert!(matches!(&outcomes[3], WireOutcome::Answered(a) if a.release_key == "b"));
    }

    #[test]
    fn overload_travels_as_its_own_code() {
        let engine = engine().with_admission_limit(2);
        let frame = WireRequest::new(
            4,
            RequestBody::Query(query(
                "a",
                &[
                    (-130.0, 10.0, -70.0, 50.0),
                    (-120.0, 15.0, -80.0, 45.0),
                    (-110.0, 20.0, -90.0, 40.0),
                ],
            )),
        )
        .encode();
        let response = handle_frame(&engine, &frame);
        let ResponseBody::Error(e) = response.body else {
            panic!("expected error");
        };
        assert_eq!(e.code, ErrorCode::Overloaded);
        // The counters travel structured, not only inside the prose —
        // and survive a wire round trip.
        assert_eq!(
            e.overload,
            Some(OverloadInfo {
                inflight_rects: 0,
                limit: 2
            })
        );
        let line = WireResponse::error(4, e.clone()).encode();
        let back = WireResponse::decode(&line).unwrap();
        assert_eq!(back.body, ResponseBody::Error(e));
    }

    fn epoch_engine() -> QueryEngine {
        let ds = PaperDataset::Storage.generate_n(11, 1_500).unwrap();
        let mut catalog = Catalog::new();
        for epoch in 0..4u64 {
            Pipeline::new(&ds)
                .method(Method::ug(8))
                .seed(epoch)
                .publish_into(
                    &mut catalog,
                    dpgrid_core::epoch_key("taxi", dpgrid_core::EpochRange::single(epoch)),
                )
                .unwrap();
        }
        QueryEngine::new(catalog)
    }

    #[test]
    fn window_frames_roundtrip_and_dispatch() {
        let request = WireRequest::new(
            5,
            RequestBody::Window(WireWindow {
                keyspace: "taxi".into(),
                epoch_start: 1,
                epoch_end: 3,
                rects: vec![WireRect {
                    x0: -130.0,
                    y0: 10.0,
                    x1: -70.0,
                    y1: 50.0,
                }],
            }),
        );
        let line = request.encode();
        assert!(!line.contains('\n'));
        assert_eq!(WireRequest::decode(&line).unwrap(), request);

        let engine = epoch_engine();
        let response = handle_frame(&engine, &line);
        assert_eq!(response.id, 5);
        let ResponseBody::Window(answers) = response.body else {
            panic!("expected window answers, got {:?}", response.body);
        };
        assert_eq!(answers.keyspace, "taxi");
        assert_eq!(
            answers.covered,
            vec![
                WireEpochSpan { start: 1, end: 2 },
                WireEpochSpan { start: 2, end: 3 }
            ]
        );
        assert_eq!(answers.answers.len(), 1);
        // The summed answer survives its own wire round trip.
        let line = WireResponse::new(5, ResponseBody::Window(answers.clone())).encode();
        let back = WireResponse::decode(&line).unwrap();
        assert_eq!(back.body, ResponseBody::Window(answers));
    }

    #[test]
    fn window_errors_travel_as_stable_codes() {
        let engine = epoch_engine();
        // Empty epoch range: rejected at the boundary as InvalidQuery.
        let response = handle_frame(
            &engine,
            &WireRequest::new(
                6,
                RequestBody::Window(WireWindow {
                    keyspace: "taxi".into(),
                    epoch_start: 3,
                    epoch_end: 3,
                    rects: vec![],
                }),
            )
            .encode(),
        );
        let ResponseBody::Error(e) = response.body else {
            panic!("expected error");
        };
        assert_eq!(e.code, ErrorCode::InvalidQuery);

        // A window past every retained epoch is UnknownKey, naming the
        // missing epoch range.
        let response = handle_frame(
            &engine,
            &WireRequest::new(
                7,
                RequestBody::Window(WireWindow {
                    keyspace: "taxi".into(),
                    epoch_start: 10,
                    epoch_end: 12,
                    rects: vec![],
                }),
            )
            .encode(),
        );
        let ResponseBody::Error(e) = response.body else {
            panic!("expected error");
        };
        assert_eq!(e.code, ErrorCode::UnknownKey);
        assert!(e.message.contains("taxi@epoch:10-12"), "{}", e.message);

        // Malformed rects fail validation before touching the engine.
        let response = handle_frame(
            &engine,
            &WireRequest::new(
                8,
                RequestBody::Window(WireWindow {
                    keyspace: "taxi".into(),
                    epoch_start: 0,
                    epoch_end: 4,
                    rects: vec![WireRect {
                        x0: 5.0,
                        y0: 0.0,
                        x1: -5.0,
                        y1: 1.0,
                    }],
                }),
            )
            .encode(),
        );
        let ResponseBody::Error(e) = response.body else {
            panic!("expected error");
        };
        assert_eq!(e.code, ErrorCode::InvalidQuery);
        assert!(e.message.contains("rect #0"), "{}", e.message);
    }
}
