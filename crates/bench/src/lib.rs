//! Shared fixtures for the criterion benches and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use dpgrid_geo::generators::PaperDataset;
use dpgrid_geo::GeoDataset;

/// Deterministic dataset fixture used by the benches: `landmark`-shaped
/// data at the requested size.
pub fn bench_dataset(n: usize) -> GeoDataset {
    PaperDataset::Landmark
        .generate_n(0xBE7C4, n)
        .expect("bench dataset generates")
}

/// Deterministic RNG fixture.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0x5EED)
}
