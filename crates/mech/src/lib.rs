//! Differential-privacy mechanism substrate for the `dpgrid` workspace.
//!
//! Implements the primitives every synopsis method is built from:
//!
//! * the [`Laplace`] distribution and the [`LaplaceMechanism`] for noisy
//!   counts (Dwork et al., "Calibrating noise to sensitivity");
//! * the [`GeometricMechanism`], the discrete counterpart used when
//!   integer-valued releases are preferred;
//! * the [`ExponentialMechanism`] (McSherry & Talwar) via Gumbel-max
//!   sampling, used by the KD-tree baselines to select noisy medians;
//! * [`PrivacyBudget`] accounting with sequential composition, plus the
//!   per-level allocation schemes (uniform and geometric) used by the
//!   hierarchical baselines;
//! * [`BudgetSchedule`] — per-epoch ε allocation for streaming release
//!   pipelines (uniform over a fixed horizon, or infinite-horizon
//!   exponential decay), with each epoch charged at most once against
//!   hard budget accounting;
//! * local-DP frequency oracles ([`Grr`], [`Oue`]) behind the
//!   [`FrequencyOracle`] trait — client-side `perturb`, server-side
//!   `aggregate`/`estimate` with unbiased debiasing — for the
//!   no-trusted-curator ingestion path.
//!
//! # Conventions
//!
//! ε is a plain `f64`, validated to be finite and strictly positive at
//! every construction site. All sampling takes `&mut impl Rng`, so callers
//! control seeding and reproducibility; nothing in this crate touches a
//! global RNG.
//!
//! # Example
//!
//! ```
//! use dpgrid_mech::LaplaceMechanism;
//! use rand::SeedableRng;
//!
//! let mech = LaplaceMechanism::new(1.0, 1.0).unwrap(); // ε = 1, sensitivity 1
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let noisy = mech.randomize(42.0, &mut rng);
//! assert!((noisy - 42.0).abs() < 50.0); // noise has scale 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod error;
mod exponential;
mod frequency;
mod geometric;
mod laplace;
mod schedule;

pub use budget::{geometric_allocation, uniform_allocation, PrivacyBudget};
pub use error::MechError;
pub use exponential::ExponentialMechanism;
pub use frequency::{oue_words, FrequencyOracle, Grr, LocalReport, Oue};
pub use geometric::GeometricMechanism;
pub use laplace::{Laplace, LaplaceMechanism};
pub use schedule::{BudgetSchedule, SchedulePolicy};

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MechError>;

/// Validates a privacy parameter: finite and strictly positive.
pub(crate) fn check_epsilon(epsilon: f64) -> Result<f64> {
    if epsilon.is_finite() && epsilon > 0.0 {
        Ok(epsilon)
    } else {
        Err(MechError::InvalidEpsilon(epsilon))
    }
}

/// Validates a sensitivity: finite and strictly positive.
pub(crate) fn check_sensitivity(sensitivity: f64) -> Result<f64> {
    if sensitivity.is_finite() && sensitivity > 0.0 {
        Ok(sensitivity)
    } else {
        Err(MechError::InvalidSensitivity(sensitivity))
    }
}
