//! Concurrency regression for the multi-release serving engine.
//!
//! Eight threads hammer one `QueryEngine` over four releases (three
//! queried, one churned) while writers interleave catalog inserts,
//! re-versioning and LRU pressure. Every concurrent answer must match
//! the single-threaded `CompiledSurface::answer` reference to ≤ 1e-9
//! — under cache eviction, recompilation and key replacement alike.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpgrid::prelude::*;
use dpgrid::serve::ServeError;

const QUERY_THREADS: usize = 8;
const ITERATIONS: usize = 40;

/// The three queried releases: distinct methods so both the lattice
/// and the band surface paths are under concurrent fire.
fn methods() -> Vec<(&'static str, Method, u64)> {
    vec![
        ("ug", Method::ug(24), 11),
        ("ag", Method::ag_suggested(), 12),
        ("kd", Method::KdHybrid, 13),
    ]
}

fn publish(dataset: &GeoDataset, method: Method, seed: u64) -> Release {
    Pipeline::new(dataset)
        .epsilon(1.0)
        .method(method)
        .seed(seed)
        .publish()
        .unwrap()
}

/// A mixed per-release workload: spanning, wide, interior, sliver and
/// miss queries.
fn workload(domain: &Rect) -> Vec<Rect> {
    let (x0, y0) = (domain.x0(), domain.y0());
    let (w, h) = (domain.width(), domain.height());
    let mut rects = vec![
        *domain,
        Rect::new(x0 - w, y0 - h, x0 + 2.0 * w, y0 + 2.0 * h).unwrap(),
        Rect::new(x0 - 1.0, y0 + 0.1 * h, x0 + w + 1.0, y0 + 0.9 * h).unwrap(),
        Rect::new(x0 + 0.37 * w, y0, x0 + 0.3701 * w, y0 + h).unwrap(),
        Rect::new(x0 + 2.0 * w, y0, x0 + 3.0 * w, y0 + h).unwrap(),
    ];
    for i in 0..25 {
        let t = i as f64 / 25.0;
        rects.push(
            Rect::new(
                x0 + 0.4 * w * t,
                y0 + 0.3 * h * t,
                x0 + 0.2 * w + 0.7 * w * t,
                y0 + 0.25 * h + 0.6 * h * t,
            )
            .unwrap(),
        );
    }
    rects
}

#[test]
fn concurrent_hammer_matches_single_threaded_answers() {
    let dataset = PaperDataset::Storage.generate_n(21, 4_000).unwrap();
    let rects = workload(dataset.domain().rect());

    // Reference answers from an identically seeded publish, compiled
    // and answered strictly single-threaded. Seeded pipelines are
    // deterministic, so the engine's copies hold identical cells (and
    // identically sized surfaces, which the byte budget below uses).
    let mut surface_bytes = 0usize;
    let expected: Vec<(String, Vec<f64>)> = methods()
        .iter()
        .map(|(key, method, seed)| {
            let surface = CompiledSurface::from_synopsis(&publish(&dataset, *method, *seed));
            surface_bytes += surface.memory_bytes();
            (
                key.to_string(),
                rects.iter().map(|q| surface.answer(q)).collect(),
            )
        })
        .collect();

    // A byte budget one short of all three queried surfaces: the LRU
    // churns (evict + recompile) for the whole test while answers must
    // stay exact.
    let budget = surface_bytes - 1;
    let mut catalog = Catalog::with_memory_budget(budget);
    for (key, method, seed) in methods() {
        Pipeline::new(&dataset)
            .epsilon(1.0)
            .method(method)
            .seed(seed)
            .publish_into(&mut catalog, key)
            .unwrap();
    }
    let engine = Arc::new(QueryEngine::new(catalog));
    let checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // 8 reader threads: alternate single requests and multi-release
        // batches, each answer checked against the reference.
        for t in 0..QUERY_THREADS {
            let engine = &engine;
            let expected = &expected;
            let rects = &rects;
            let checked = &checked;
            scope.spawn(move || {
                for i in 0..ITERATIONS {
                    let (key, expect) = &expected[(t + i) % expected.len()];
                    let verify = |key: &str, answers: &[f64], expect: &[f64]| {
                        assert_eq!(answers.len(), expect.len());
                        for (a, e) in answers.iter().zip(expect) {
                            assert!(
                                (a - e).abs() <= 1e-9 * (1.0 + e.abs()),
                                "release {key}: {a} vs reference {e}"
                            );
                        }
                        checked.fetch_add(answers.len() as u64, Ordering::Relaxed);
                    };
                    if i % 2 == 0 {
                        let response = engine
                            .answer(&QueryRequest::new(key.clone(), rects.clone()))
                            .unwrap();
                        verify(key, &response.answers, expect);
                    } else {
                        // A batch across every release at once.
                        let batch: Vec<QueryRequest> = expected
                            .iter()
                            .map(|(k, _)| QueryRequest::new(k.clone(), rects.clone()))
                            .collect();
                        for (response, (k, e)) in
                            engine.answer_batch(&batch).into_iter().zip(expected)
                        {
                            let response = response.unwrap();
                            assert_eq!(&response.release_key, k);
                            verify(k, &response.answers, e);
                        }
                    }
                }
            });
        }
        // 2 writer threads: interleave inserts of brand-new keys,
        // identical re-publishes of the queried keys (version bumps
        // that must not change any answer), and extra LRU pressure.
        for w in 0..2u64 {
            let engine = &engine;
            let dataset = &dataset;
            scope.spawn(move || {
                for i in 0..ITERATIONS as u64 {
                    let fresh = publish(dataset, Method::ug(8), 1_000 + w * 100 + i);
                    engine.insert(format!("extra-{w}-{i}"), fresh);
                    // Re-publish an identical release over a live key:
                    // readers see a version bump, never a value change.
                    let churn = methods();
                    let (key, method, seed) = &churn[(i % 3) as usize];
                    engine.insert(*key, publish(dataset, *method, *seed));
                    std::thread::yield_now();
                }
            });
        }
    });

    assert_eq!(
        checked.load(Ordering::Relaxed),
        (QUERY_THREADS * ITERATIONS * 2 * rects.len()) as u64,
        "every reader iteration verifies one single or one triple batch"
    );
    // One post-scope lookup lets the LRU settle: eviction defers
    // victims whose releases were mid-compile on other threads, and
    // with every thread joined the next touch collects the overflow.
    engine
        .answer(&QueryRequest::new("ug", vec![rects[0]]))
        .unwrap();
    let stats = engine.stats();
    assert_eq!(stats.unknown_keys, 0);
    assert!(stats.catalog.releases >= 3 + 2 * ITERATIONS);
    // With every thread joined (no lease can defer a victim), the
    // resident bytes obey the configured budget.
    assert!(
        stats.catalog.resident_bytes <= budget,
        "resident {} exceeds budget {budget}",
        stats.catalog.resident_bytes
    );
    // Churn really happened: recompilations beyond the three releases.
    assert!(stats.catalog.evictions > 0, "LRU never engaged");
    assert!(matches!(
        engine.answer(&QueryRequest::new("nope", vec![rects[0]])),
        Err(ServeError::UnknownRelease(_))
    ));
}
