//! Re-export of the canonical method registry.
//!
//! The [`Method`] registry started life in this crate; it is now the
//! core crate's canonical construction surface
//! ([`dpgrid_core::method`]), shared by the publishing pipeline, the
//! examples, and this harness. This module keeps the historical
//! `dpgrid_eval::method::Method` path alive as a re-export — the type
//! is identical, so experiments declared against either path
//! interoperate.

pub use dpgrid_core::method::{BoxedSynopsis, Method};
