//! Wire-protocol regression: proptest round-trips of every frame
//! variant through *both* codecs (one-line JSON v1 and the binary v2
//! frame format), single-line framing under adversarial strings,
//! cross-codec dispatch equivalence, and the boundary validation that
//! keeps malformed rectangles out of the engine.

use dpgrid::prelude::*;
use dpgrid::serve::wire::{
    self, binary, ErrorCode, RequestBody, ResponseBody, WireAnswers, WireError, WireOutcome,
    WireQuery, WireRect, WireRequest, WireResponse, PROTOCOL_VERSION,
};
use dpgrid::serve::CacheState;
use dpgrid::serve::{CatalogStats, EngineStats, ServeError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Keys stress framing: quotes, backslashes, newlines, unicode,
/// embedded JSON — all must survive one-line encoding.
const NASTY_KEYS: &[&str] = &[
    "storage",
    "key with spaces",
    "quo\"te",
    "back\\slash",
    "new\nline",
    "tab\there",
    "ünïcødé-κλειδί-鍵",
    "{\"looks\":\"like json\"}",
    "",
];

fn arb_key(rng: &mut StdRng) -> String {
    NASTY_KEYS[rng.random_range(0..NASTY_KEYS.len())].to_string()
}

/// Finite but awkward coordinates: subnormals, huge magnitudes,
/// negative zero, high-precision fractions.
fn arb_coord(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..6u32) {
        0 => -0.0,
        1 => f64::MIN_POSITIVE,
        2 => -1e300,
        3 => 1e300,
        4 => rng.random_range(-1e6..1e6),
        _ => rng.random_range(-1.0..1.0) / 3.0,
    }
}

fn arb_rect(rng: &mut StdRng) -> WireRect {
    WireRect {
        x0: arb_coord(rng),
        y0: arb_coord(rng),
        x1: arb_coord(rng),
        y1: arb_coord(rng),
    }
}

fn arb_query(rng: &mut StdRng) -> WireQuery {
    let n = rng.random_range(0..5usize);
    WireQuery {
        release_key: arb_key(rng),
        rects: (0..n).map(|_| arb_rect(rng)).collect(),
    }
}

/// An id inside the documented JSON safe-integer range (`<= 2⁵³`);
/// ids beyond it are out of contract (JSON numbers are doubles).
fn arb_id(rng: &mut StdRng) -> u64 {
    rng.random::<u64>() >> 12
}

fn arb_request(rng: &mut StdRng) -> WireRequest {
    let body = match rng.random_range(0..6u32) {
        0 => RequestBody::Query(arb_query(rng)),
        1 => {
            let n = rng.random_range(0..4usize);
            RequestBody::Batch((0..n).map(|_| arb_query(rng)).collect())
        }
        2 => RequestBody::Stats,
        3 => RequestBody::Keys,
        4 => RequestBody::Report(arb_report(rng)),
        _ => RequestBody::Ping,
    };
    WireRequest::new(arb_id(rng), body)
}

fn arb_error(rng: &mut StdRng) -> WireError {
    let code = match rng.random_range(0..6u32) {
        0 => ErrorCode::UnknownKey,
        1 => ErrorCode::InvalidQuery,
        2 => ErrorCode::Overloaded,
        3 => ErrorCode::MalformedRequest,
        4 => ErrorCode::UnsupportedVersion,
        _ => ErrorCode::Internal,
    };
    let mut error = WireError::new(code, arb_key(rng));
    if code == ErrorCode::Overloaded {
        // Overload errors carry structured counters (additive field);
        // they must survive the round trip bit-exactly too.
        error.overload = Some(dpgrid::serve::wire::OverloadInfo {
            inflight_rects: rng.random::<u64>() >> 12,
            limit: rng.random::<u64>() >> 12,
        });
    }
    error
}

fn arb_answers(rng: &mut StdRng) -> WireAnswers {
    let n = rng.random_range(0..5usize);
    WireAnswers {
        release_key: arb_key(rng),
        version: arb_id(rng),
        cache: if rng.random::<bool>() {
            CacheState::Warm
        } else {
            CacheState::Cold
        },
        answers: (0..n).map(|_| arb_coord(rng)).collect(),
    }
}

fn arb_stats(rng: &mut StdRng) -> EngineStats {
    EngineStats {
        requests: rng.random::<u64>() >> 12,
        answers: rng.random::<u64>() >> 12,
        unknown_keys: rng.random::<u64>() >> 12,
        shed: rng.random::<u64>() >> 12,
        inflight_rects: rng.random::<u64>() >> 12,
        admission_limit: rng.random::<u64>() >> 12,
        catalog: CatalogStats {
            releases: rng.random_range(0..1_000_000usize),
            warm: rng.random_range(0..1_000usize),
            capacity: if rng.random::<bool>() {
                usize::MAX
            } else {
                rng.random_range(1..1_000usize)
            },
            budget_bytes: if rng.random::<bool>() {
                usize::MAX
            } else {
                rng.random_range(1..1_000_000_000usize)
            },
            resident_bytes: rng.random_range(0..1_000_000_000usize),
            lookups: rng.random::<u64>() >> 12,
            warm_hits: rng.random::<u64>() >> 12,
            compilations: rng.random::<u64>() >> 12,
            evictions: rng.random::<u64>() >> 12,
        },
        // The transport tail is optional-additive: both absence and
        // presence must round-trip bit-exactly through both codecs.
        transport: if rng.random::<bool>() {
            Some(dpgrid::serve::TransportStats {
                accepted: rng.random::<u64>() >> 12,
                active: rng.random::<u64>() >> 12,
                frames_decoded: rng.random::<u64>() >> 12,
                read_stalls: rng.random::<u64>() >> 12,
                write_stalls: rng.random::<u64>() >> 12,
                bytes_in: rng.random::<u64>() >> 12,
                bytes_out: rng.random::<u64>() >> 12,
                reports_accepted: rng.random::<u64>() >> 12,
            })
        } else {
            None
        },
        // The kernel-backend byte is also optional-additive, and every
        // combination with the transport tail must round-trip.
        kernel_backend: match rng.random_range(0..4u8) {
            0 => None,
            1 => Some(dpgrid::serve::KernelBackend::Scalar),
            2 => Some(dpgrid::serve::KernelBackend::Avx2),
            _ => Some(dpgrid::serve::KernelBackend::Mixed),
        },
    }
}

/// A well-formed report batch of either oracle family — shapes are
/// consistent (`oue_bits` is exactly `oue_count × ⌈cells/64⌉` words)
/// so both codecs round-trip it, but *values* (cell indices, tail
/// bits) range freely: the wire layer must carry them verbatim and
/// leave semantic rejection to `validate`.
fn arb_report(rng: &mut StdRng) -> wire::WireReportBatch {
    let cells = rng.random_range(1..=200u32);
    let mut batch = wire::WireReportBatch {
        keyspace: arb_key(rng),
        epoch: rng.random::<u64>() >> 12,
        epsilon: rng.random_range(0.01..8.0),
        cells,
        oracle: String::new(),
        grr: Vec::new(),
        oue_count: 0,
        oue_bits: Vec::new(),
    };
    if rng.random::<bool>() {
        batch.oracle = "grr".into();
        let n = rng.random_range(0..40usize);
        batch.grr = (0..n).map(|_| rng.random::<u32>()).collect();
    } else {
        batch.oracle = "oue".into();
        let words = (cells as usize).div_ceil(64);
        batch.oue_count = rng.random_range(0..20u32);
        batch.oue_bits = (0..batch.oue_count as usize * words)
            .map(|_| rng.random::<u64>())
            .collect();
    }
    batch
}

fn arb_report_ack(rng: &mut StdRng) -> wire::WireReportAck {
    wire::WireReportAck {
        keyspace: arb_key(rng),
        epoch: rng.random::<u64>() >> 12,
        accepted: rng.random::<u64>() >> 12,
        epoch_total: rng.random::<u64>() >> 12,
    }
}

fn arb_response(rng: &mut StdRng) -> WireResponse {
    let body = match rng.random_range(0..7u32) {
        6 => ResponseBody::Report(arb_report_ack(rng)),
        0 => ResponseBody::Answers(arb_answers(rng)),
        1 => {
            let n = rng.random_range(0..4usize);
            ResponseBody::Batch(
                (0..n)
                    .map(|_| {
                        if rng.random::<bool>() {
                            WireOutcome::Answered(arb_answers(rng))
                        } else {
                            WireOutcome::Failed(arb_error(rng))
                        }
                    })
                    .collect(),
            )
        }
        2 => ResponseBody::Stats(arb_stats(rng)),
        3 => {
            let n = rng.random_range(0..5usize);
            ResponseBody::Keys((0..n).map(|_| arb_key(rng)).collect())
        }
        4 => ResponseBody::Pong,
        _ => ResponseBody::Error(arb_error(rng)),
    };
    WireResponse::new(arb_id(rng), body)
}

/// Encodes `request` as one binary v2 frame and decodes it back
/// through the same header/payload split the transport uses.
fn binary_roundtrip_request(request: &WireRequest) -> WireRequest {
    let mut buf = Vec::new();
    binary::encode_request(request, &mut buf).unwrap();
    let head: [u8; binary::HEADER_BYTES] = buf[..binary::HEADER_BYTES].try_into().unwrap();
    let header = binary::decode_header(&head).unwrap();
    assert_eq!(header.payload_len, buf.len() - binary::HEADER_BYTES);
    binary::decode_request(&header, &buf[binary::HEADER_BYTES..]).unwrap()
}

/// Encodes `response` as one binary v2 frame and decodes it back.
fn binary_roundtrip_response(response: &WireResponse) -> WireResponse {
    let mut buf = Vec::new();
    binary::encode_response(response, &mut buf).unwrap();
    let head: [u8; binary::HEADER_BYTES] = buf[..binary::HEADER_BYTES].try_into().unwrap();
    let header = binary::decode_header(&head).unwrap();
    assert_eq!(header.payload_len, buf.len() - binary::HEADER_BYTES);
    binary::decode_response(&header, &buf[binary::HEADER_BYTES..]).unwrap()
}

proptest! {
    /// Every request frame round-trips bit-exactly through its
    /// one-line JSON encoding, whatever variant and key content.
    #[test]
    fn request_frames_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = arb_request(&mut rng);
        let line = request.encode();
        prop_assert!(!line.contains('\n'), "frame must be one line: {}", line);
        let back = WireRequest::decode(&line)
            .unwrap_or_else(|e| panic!("{line}: {}", e.error));
        prop_assert_eq!(back, request);
    }

    /// Every response frame round-trips bit-exactly, including stats
    /// with unbounded (`usize::MAX`) limits and error payloads.
    #[test]
    fn response_frames_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let response = arb_response(&mut rng);
        let line = response.encode();
        prop_assert!(!line.contains('\n'), "frame must be one line: {}", line);
        let back = WireResponse::decode(&line)
            .unwrap_or_else(|e| panic!("{line}: {}", e.error));
        prop_assert_eq!(back, response);
    }

    /// Merged stats — what a shard router reports for a whole fleet —
    /// are exact element-wise sums (saturating only on the bound
    /// fields, so an unbounded member keeps the aggregate unbounded)
    /// and survive the wire like any other stats payload.
    #[test]
    fn merged_stats_are_exact_and_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Scale each member's traffic counters down so the *sums* stay
        // inside the JSON safe-integer range (numbers travel as IEEE
        // doubles — the same documented contract as frame ids); the
        // usize::MAX bound fields stay as-is to exercise saturation.
        let shrink = |mut s: EngineStats| {
            s.requests >>= 2;
            s.answers >>= 2;
            s.unknown_keys >>= 2;
            s.shed >>= 2;
            s.inflight_rects >>= 2;
            s.admission_limit >>= 2;
            s.catalog.lookups >>= 2;
            s.catalog.warm_hits >>= 2;
            s.catalog.compilations >>= 2;
            s.catalog.evictions >>= 2;
            if let Some(t) = s.transport.as_mut() {
                t.accepted >>= 2;
                t.active >>= 2;
                t.frames_decoded >>= 2;
                t.read_stalls >>= 2;
                t.write_stalls >>= 2;
                t.bytes_in >>= 2;
                t.bytes_out >>= 2;
                t.reports_accepted >>= 2;
            }
            s
        };
        let parts: Vec<EngineStats> = (0..rng.random_range(2..5usize))
            .map(|_| shrink(arb_stats(&mut rng)))
            .collect();
        let merged: EngineStats = parts.iter().sum();
        prop_assert_eq!(merged.requests, parts.iter().map(|s| s.requests).sum::<u64>());
        prop_assert_eq!(merged.answers, parts.iter().map(|s| s.answers).sum::<u64>());
        prop_assert_eq!(merged.shed, parts.iter().map(|s| s.shed).sum::<u64>());
        prop_assert_eq!(
            merged.catalog.releases,
            parts.iter().map(|s| s.catalog.releases).sum::<usize>()
        );
        prop_assert_eq!(
            merged.catalog.resident_bytes,
            parts.iter().map(|s| s.catalog.resident_bytes).sum::<usize>()
        );
        // Bounds saturate: any unbounded member keeps the aggregate
        // unbounded; otherwise the aggregate is the plain sum.
        let budgets: Vec<usize> = parts.iter().map(|s| s.catalog.budget_bytes).collect();
        if budgets.contains(&usize::MAX) {
            prop_assert_eq!(merged.catalog.budget_bytes, usize::MAX);
        } else {
            prop_assert_eq!(merged.catalog.budget_bytes, budgets.iter().sum::<usize>());
        }
        let caps: Vec<usize> = parts.iter().map(|s| s.catalog.capacity).collect();
        if caps.contains(&usize::MAX) {
            prop_assert_eq!(merged.catalog.capacity, usize::MAX);
        } else {
            prop_assert_eq!(merged.catalog.capacity, caps.iter().sum::<usize>());
        }
        // Merging is order-independent and zero is its identity.
        let reversed: EngineStats = parts.iter().rev().sum();
        prop_assert_eq!(merged, reversed);
        prop_assert_eq!(EngineStats::zeroed().merge(&merged), merged);
        // The aggregate travels the wire bit-exactly, saturated
        // (usize::MAX) bounds included.
        let frame = WireResponse::new(9, ResponseBody::Stats(merged)).encode();
        let back = WireResponse::decode(&frame).unwrap();
        prop_assert_eq!(back.body, ResponseBody::Stats(merged));
    }

    /// Every request variant also round-trips bit-exactly through the
    /// binary v2 codec — nasty keys included — and binary ids span the
    /// full `u64` range (no JSON safe-integer ceiling).
    #[test]
    fn binary_request_frames_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let body = arb_request(&mut rng).body;
        let request = WireRequest::new(rng.random::<u64>(), body);
        let back = binary_roundtrip_request(&request);
        prop_assert_eq!(back.id, request.id);
        prop_assert_eq!(back.body, request.body);
        prop_assert_eq!(back.protocol_version, binary::PROTOCOL_VERSION);
    }

    /// Every response variant round-trips bit-exactly through the
    /// binary v2 codec, including stats whose unbounded fields carry
    /// `usize::MAX` (fixed-width `u64` on the wire — no doubles).
    #[test]
    fn binary_response_frames_roundtrip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let body = arb_response(&mut rng).body;
        let response = WireResponse::new(rng.random::<u64>(), body);
        let back = binary_roundtrip_response(&response);
        prop_assert_eq!(back.id, response.id);
        prop_assert_eq!(back.body, response.body);
        prop_assert_eq!(back.protocol_version, binary::PROTOCOL_VERSION);
    }

    /// The two codecs agree: a frame encoded through JSON v1 and the
    /// same frame encoded through binary v2 decode to the same body.
    #[test]
    fn codecs_decode_to_identical_bodies(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let request = arb_request(&mut rng);
        let via_json = WireRequest::decode(&request.encode()).unwrap();
        let via_binary = binary_roundtrip_request(&request);
        prop_assert_eq!(via_json.body, via_binary.body);
        prop_assert_eq!(via_json.id, via_binary.id);
        let response = arb_response(&mut rng);
        let via_json = WireResponse::decode(&response.encode()).unwrap();
        let via_binary = binary_roundtrip_response(&response);
        prop_assert_eq!(via_json.body, via_binary.body);
        prop_assert_eq!(via_json.id, via_binary.id);
    }

    /// Validated wire rectangles preserve the exact coordinates of the
    /// typed `Rect` they came from.
    #[test]
    fn validated_rects_are_lossless(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (arb_coord(&mut rng), arb_coord(&mut rng));
        let (c, d) = (arb_coord(&mut rng), arb_coord(&mut rng));
        let rect = dpgrid::geo::Rect::new(a.min(c), b.min(d), a.max(c), b.max(d)).unwrap();
        let wire = WireRect::from(&rect);
        let line = WireRequest::new(1, RequestBody::Query(WireQuery {
            release_key: "k".into(),
            rects: vec![wire],
        }))
        .encode();
        let back = WireRequest::decode(&line).unwrap();
        let RequestBody::Query(q) = back.body else { panic!("query survives") };
        let validated = q.rects[0].validate().unwrap();
        prop_assert_eq!(validated, rect);
    }
}

#[test]
fn frames_carry_the_current_protocol_version() {
    let line = WireRequest::new(5, RequestBody::Ping).encode();
    assert!(line.contains(&format!("\"protocol_version\":{PROTOCOL_VERSION}")));
    let response = WireResponse::new(5, ResponseBody::Pong);
    assert_eq!(response.protocol_version, PROTOCOL_VERSION);
}

#[test]
fn rejection_paths_cover_every_malformed_rect_shape() {
    let cases: &[(f64, f64, f64, f64, &str)] = &[
        (f64::NAN, 0.0, 1.0, 1.0, "NaN x0"),
        (0.0, f64::NAN, 1.0, 1.0, "NaN y0"),
        (0.0, 0.0, f64::NAN, 1.0, "NaN x1"),
        (0.0, 0.0, 1.0, f64::NAN, "NaN y1"),
        (f64::INFINITY, 0.0, 1.0, 1.0, "+inf x0"),
        (f64::NEG_INFINITY, 0.0, 1.0, 1.0, "-inf x0"),
        (0.0, 0.0, f64::INFINITY, 1.0, "+inf x1"),
        (0.0, 0.0, 1.0, f64::NEG_INFINITY, "-inf y1"),
        (2.0, 0.0, 1.0, 1.0, "x0 > x1"),
        (0.0, 2.0, 1.0, 1.0, "y0 > y1"),
    ];
    for &(x0, y0, x1, y1, what) in cases {
        let rect = WireRect { x0, y0, x1, y1 };
        match rect.validate() {
            Err(ServeError::InvalidQuery(_)) => {}
            other => panic!("{what}: expected InvalidQuery, got {other:?}"),
        }
        // The same rejection at the query level names the rect index.
        let query = WireQuery {
            release_key: "k".into(),
            rects: vec![
                WireRect {
                    x0: 0.0,
                    y0: 0.0,
                    x1: 1.0,
                    y1: 1.0,
                },
                rect,
            ],
        };
        match query.validate() {
            Err(ServeError::InvalidQuery(msg)) => {
                assert!(msg.contains("rect #1"), "{what}: message was {msg}")
            }
            other => panic!("{what}: expected InvalidQuery, got {other:?}"),
        }
    }
}

#[test]
fn non_finite_coordinates_on_the_wire_are_rejected_not_smuggled() {
    // JSON cannot carry NaN/inf: the encoder writes null, the decoder
    // reads NaN back. Boundary validation must therefore reject what
    // arrives, so no non-finite rect ever reaches an engine.
    let request = WireRequest::new(
        1,
        RequestBody::Query(WireQuery {
            release_key: "k".into(),
            rects: vec![WireRect {
                x0: f64::NAN,
                y0: 0.0,
                x1: f64::INFINITY,
                y1: 1.0,
            }],
        }),
    );
    let line = request.encode();
    assert!(line.contains("null"), "non-finite floats serialise as null");
    let back = WireRequest::decode(&line).unwrap();
    let RequestBody::Query(query) = back.body else {
        panic!("query survives");
    };
    assert!(matches!(query.validate(), Err(ServeError::InvalidQuery(_))));
}

#[test]
fn non_finite_coordinates_in_binary_frames_are_rejected_not_smuggled() {
    // The binary codec carries f64 bits verbatim, so NaN *arrives* as
    // NaN (unlike JSON's null detour) — and the same boundary
    // validation that guards v1 must reject it before any engine sees
    // it. Codec choice must not change what gets through.
    let request = WireRequest::new(
        1,
        RequestBody::Query(WireQuery {
            release_key: "k".into(),
            rects: vec![WireRect {
                x0: f64::NAN,
                y0: 0.0,
                x1: f64::INFINITY,
                y1: 1.0,
            }],
        }),
    );
    let back = binary_roundtrip_request(&request);
    let RequestBody::Query(query) = back.body else {
        panic!("query survives");
    };
    assert!(query.rects[0].x0.is_nan(), "binary carries NaN bit-exactly");
    assert!(query.rects[0].x1.is_infinite());
    assert!(matches!(query.validate(), Err(ServeError::InvalidQuery(_))));
}

#[test]
fn binary_error_codes_have_stable_wire_bytes() {
    // The v2 counterpart of the JSON name-stability contract: these
    // exact bytes are the wire form, and the encoded error payload
    // leads with them.
    for (code, byte) in [
        (ErrorCode::UnknownKey, 0u8),
        (ErrorCode::InvalidQuery, 1),
        (ErrorCode::Overloaded, 2),
        (ErrorCode::MalformedRequest, 3),
        (ErrorCode::UnsupportedVersion, 4),
        (ErrorCode::Internal, 5),
    ] {
        assert_eq!(binary::code_byte(code), byte, "{}", code.as_str());
        let mut buf = Vec::new();
        binary::encode_response(&WireResponse::error(1, WireError::new(code, "x")), &mut buf)
            .unwrap();
        assert_eq!(
            buf[binary::HEADER_BYTES],
            byte,
            "{} error payload must lead with its code byte",
            code.as_str()
        );
    }
}

/// The acceptance gate for the two-codec design: the same requests
/// dispatched against the same engine produce identical
/// `QueryResponse`s (and identical typed failures) whether they
/// travelled as JSON v1 or binary v2 frames.
#[test]
fn both_codecs_dispatch_to_identical_query_responses() {
    let dataset = PaperDataset::Storage.generate_n(44, 1_000).unwrap();
    let mut catalog = Catalog::new();
    Pipeline::new(&dataset)
        .epsilon(1.0)
        .method(Method::ug(8))
        .seed(7)
        .publish_into(&mut catalog, "storage")
        .unwrap();
    let engine = QueryEngine::new(catalog);
    let domain = *dataset.domain().rect();
    let inner = Rect::new(
        domain.x0() + 0.2 * domain.width(),
        domain.y0() + 0.1 * domain.height(),
        domain.x0() + 0.8 * domain.width(),
        domain.y0() + 0.7 * domain.height(),
    )
    .unwrap();
    let rects: Vec<WireRect> = [&domain, &inner].into_iter().map(WireRect::from).collect();
    // Warm the surface first so both dispatches below see the same
    // cache state (`Warm`) — the equivalence claim is about the codec,
    // not about who pays the one-time compile.
    let warm = wire::dispatch(
        &engine,
        1,
        RequestBody::Query(WireQuery {
            release_key: "storage".into(),
            rects: rects.clone(),
        }),
    );
    assert!(matches!(warm.body, ResponseBody::Answers(_)), "{warm:?}");

    let bodies = [
        RequestBody::Query(WireQuery {
            release_key: "storage".into(),
            rects: rects.clone(),
        }),
        // A batch mixing a served release with an unknown key: the
        // per-query failure must come back identically typed too.
        RequestBody::Batch(vec![
            WireQuery {
                release_key: "storage".into(),
                rects: rects.clone(),
            },
            WireQuery {
                release_key: "missing".into(),
                rects: rects.clone(),
            },
        ]),
        RequestBody::Keys,
        RequestBody::Ping,
    ];
    for body in bodies {
        let request = WireRequest::new(11, body);
        // v1: the full JSON path, exactly as the server's line loop
        // runs it.
        let v1 = wire::handle_frame(&engine, &request.encode());
        // v2: decode the binary frame, dispatch the decoded body.
        let decoded = binary_roundtrip_request(&request);
        let v2 = wire::dispatch(&engine, decoded.id, decoded.body);
        assert_eq!(v1.id, v2.id);
        assert_eq!(v1.body, v2.body, "codecs disagree on {request:?}");
        // And the response itself survives the binary codec intact.
        assert_eq!(binary_roundtrip_response(&v2).body, v2.body);
    }
}

#[test]
fn malformed_report_batches_are_rejected_typed_before_any_collector() {
    let base = wire::WireReportBatch {
        keyspace: "k".into(),
        epoch: 0,
        epsilon: 1.0,
        cells: 100,
        oracle: "grr".into(),
        grr: vec![0, 99],
        oue_count: 0,
        oue_bits: Vec::new(),
    };
    assert!(base.validate().is_ok(), "fixture must start valid");
    let mutate = |f: &dyn Fn(&mut wire::WireReportBatch)| {
        let mut b = base.clone();
        f(&mut b);
        b
    };
    let oue_base = mutate(&|b| {
        b.oracle = "oue".into();
        b.grr.clear();
        b.oue_count = 2;
        b.oue_bits = vec![1, 0, 1 << 35, 0];
    });
    assert!(oue_base.validate().is_ok(), "OUE fixture must start valid");
    let cases: Vec<(&str, wire::WireReportBatch)> = vec![
        ("NaN epsilon", mutate(&|b| b.epsilon = f64::NAN)),
        ("zero epsilon", mutate(&|b| b.epsilon = 0.0)),
        ("negative epsilon", mutate(&|b| b.epsilon = -1.0)),
        ("zero cells", mutate(&|b| b.cells = 0)),
        ("out-of-domain GRR cell", mutate(&|b| b.grr.push(100))),
        ("unknown oracle", mutate(&|b| b.oracle = "rappor".into())),
        ("OUE batch still carrying GRR fields", {
            let mut b = oue_base.clone();
            b.grr = vec![1];
            b
        }),
        ("OUE word-count shape mismatch", {
            let mut b = oue_base.clone();
            b.oue_bits.pop();
            b
        }),
        // cells = 100 ⇒ the top 28 bits of each report's *last* word
        // (index 1 within the report) must be clear; bit 36 is the
        // first forbidden one.
        ("OUE tail bits past the domain", {
            let mut b = oue_base.clone();
            b.oue_bits[3] = 1 << 36;
            b
        }),
    ];
    for (what, batch) in cases {
        match batch.validate() {
            Err(ServeError::InvalidQuery(_)) => {}
            other => panic!("{what}: expected InvalidQuery, got {other:?}"),
        }
    }
}

/// The write-path acceptance contract at the dispatch seam: a
/// read-only service answers `Report` with `MalformedRequest`
/// (indistinguishable from a pre-`Report` server), a collecting
/// service acks it — and both answers are codec-independent.
#[test]
fn report_dispatch_agrees_across_codecs_and_server_generations() {
    use dpgrid::ldp::{CollectingService, CollectorConfig, ReportCollector};
    let batch = wire::WireReportBatch {
        keyspace: "taxi".into(),
        epoch: 0,
        epsilon: 0.5,
        cells: 64,
        oracle: "grr".into(),
        grr: vec![1, 2, 3],
        oue_count: 0,
        oue_bits: Vec::new(),
    };
    let request = WireRequest::new(3, RequestBody::Report(batch.clone()));

    // Read-only service (no write path): typed "feature unsupported".
    let engine = QueryEngine::new(Catalog::new());
    let v1 = wire::handle_frame(&engine, &request.encode());
    let decoded = binary_roundtrip_request(&request);
    let v2 = wire::dispatch(&engine, decoded.id, decoded.body);
    assert_eq!(v1.body, v2.body);
    assert!(
        matches!(&v1.body, ResponseBody::Error(e) if e.code == ErrorCode::MalformedRequest),
        "read-only server must answer MalformedRequest, got {v1:?}"
    );

    // Two identical collecting services (reports mutate state, so each
    // codec dispatches against its own): identical acks.
    let collecting = || {
        let config = CollectorConfig::new(
            "taxi",
            Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap(),
            8,
            8,
            BudgetSchedule::uniform(1.0, 2).unwrap(),
        )
        .unwrap();
        CollectingService::new(
            QueryEngine::new(Catalog::new()),
            ReportCollector::new(config).unwrap(),
        )
    };
    let (svc1, svc2) = (collecting(), collecting());
    let v1 = wire::handle_frame(&svc1, &request.encode());
    let decoded = binary_roundtrip_request(&request);
    let v2 = wire::dispatch(&svc2, decoded.id, decoded.body);
    assert_eq!(v1.body, v2.body, "codecs disagree on the report ack");
    match &v1.body {
        ResponseBody::Report(ack) => {
            assert_eq!((ack.accepted, ack.epoch_total), (3, 3));
            assert_eq!(ack.keyspace, "taxi");
        }
        other => panic!("expected Report ack, got {other:?}"),
    }

    // A semantically invalid batch fails typed at the boundary and
    // never touches the accumulator.
    let mut bad = batch.clone();
    bad.oracle = "rappor".into();
    let rejected = wire::dispatch(&svc1, 4, RequestBody::Report(bad));
    assert!(
        matches!(&rejected.body, ResponseBody::Error(e) if e.code == ErrorCode::InvalidQuery),
        "got {rejected:?}"
    );
    assert_eq!(svc1.with_collector(|c| c.open_reports()), 3);
}

#[test]
fn error_codes_have_stable_wire_names() {
    // The stability contract: these exact strings are the wire form.
    for (code, name) in [
        (ErrorCode::UnknownKey, "\"UnknownKey\""),
        (ErrorCode::InvalidQuery, "\"InvalidQuery\""),
        (ErrorCode::Overloaded, "\"Overloaded\""),
        (ErrorCode::MalformedRequest, "\"MalformedRequest\""),
        (ErrorCode::UnsupportedVersion, "\"UnsupportedVersion\""),
        (ErrorCode::Internal, "\"Internal\""),
    ] {
        let line = WireResponse::error(1, WireError::new(code, "x")).encode();
        assert!(line.contains(name), "{line} must carry {name}");
        assert_eq!(format!("\"{}\"", code.as_str()), name);
    }
}
