//! The Privelet baseline (`W_m` in the paper's notation).

use rand::Rng;
use serde::{Deserialize, Serialize};

use dpgrid_geo::{Build, DenseGrid, Domain, GeoDataset, Rect, SummedAreaTable, Synopsis};
use dpgrid_mech::Laplace;

use crate::wavelet;
use crate::{BaselineError, Result};

/// Configuration for [`Privelet`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriveletConfig {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Grid size `m` — the method operates on an `m × m` frequency
    /// matrix (zero-padded to the next power of two internally, as in
    /// Xiao et al.'s implementation).
    pub m: usize,
}

impl PriveletConfig {
    /// Creates a configuration (the paper's `W_m`).
    pub fn new(epsilon: f64, m: usize) -> Self {
        PriveletConfig { epsilon, m }
    }

    fn validate(&self) -> Result<()> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(BaselineError::InvalidConfig(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        if self.m == 0 {
            return Err(BaselineError::InvalidConfig("m must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// The **Privelet** synopsis of Xiao, Wang & Gehrke: Haar-transform the
/// frequency matrix (2-D standard decomposition), add
/// weight-calibrated Laplace noise to every wavelet coefficient, invert
/// the transform, and answer queries from the reconstructed matrix.
///
/// Coefficient `i` receives noise `Lap(ρ / (ε · W_i))` where `W_i` is its
/// subtree-size weight and `ρ = (1 + log₂ p)²` the generalized
/// sensitivity of the padded `p × p` transform; large-subtree
/// coefficients get small noise, which makes the noise on *range sums*
/// cancel much better than independent per-cell noise — the effect the
/// paper observes as a small accuracy win over UG at equal grid size
/// (Figure 3), vanishing for small grids (Figure 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Privelet {
    grid: DenseGrid,
    sat: SummedAreaTable,
    epsilon: f64,
    m: usize,
    padded: usize,
}

impl Privelet {
    /// Builds the synopsis over `dataset`. Thin delegation to the
    /// uniform [`Build`] trait.
    pub fn build(
        dataset: &GeoDataset,
        config: &PriveletConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        <Privelet as Build>::build(dataset, config, rng)
    }
}

impl Build for Privelet {
    type Config = PriveletConfig;

    fn build(dataset: &GeoDataset, config: &PriveletConfig, rng: &mut impl Rng) -> Result<Self> {
        config.validate()?;
        let m = config.m;
        let p = wavelet::next_pow2(m);

        // Frequency matrix, zero-padded to p × p.
        let counts = DenseGrid::count(dataset, m, m)?;
        let mut matrix = vec![0.0f64; p * p];
        for r in 0..m {
            for c in 0..m {
                matrix[r * p + c] = counts.get(c, r);
            }
        }

        // Forward transform, per-coefficient calibrated noise, inverse.
        wavelet::forward_2d(&mut matrix, p, p)?;
        let rho = wavelet::generalized_sensitivity_2d(p, p);
        for r in 0..p {
            for c in 0..p {
                let w = wavelet::weight_2d(c, r, p, p);
                let lap = Laplace::new(rho / (config.epsilon * w))?;
                matrix[r * p + c] += lap.sample(rng);
            }
        }
        wavelet::inverse_2d(&mut matrix, p, p)?;

        // Crop back to the m × m domain grid.
        let mut grid = DenseGrid::zeros(*dataset.domain(), m, m)?;
        for r in 0..m {
            for c in 0..m {
                grid.set(c, r, matrix[r * p + c]);
            }
        }
        let sat = grid.sat();
        Ok(Privelet {
            grid,
            sat,
            epsilon: config.epsilon,
            m,
            padded: p,
        })
    }
}

impl Privelet {
    /// The grid size `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The internal power-of-two transform size.
    #[inline]
    pub fn padded_size(&self) -> usize {
        self.padded
    }

    /// The reconstructed noisy grid.
    #[inline]
    pub fn grid(&self) -> &DenseGrid {
        &self.grid
    }
}

impl Synopsis for Privelet {
    fn domain(&self) -> &Domain {
        self.grid.domain()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn answer(&self, query: &Rect) -> f64 {
        self.grid.answer_uniform(&self.sat, query)
    }

    fn cells(&self) -> Vec<(Rect, f64)> {
        self.grid
            .iter_cells()
            .map(|(_, _, rect, v)| (rect, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpgrid_geo::generators;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn dataset(n: usize, seed: u64) -> GeoDataset {
        let domain = Domain::from_corners(0.0, 0.0, 8.0, 8.0).unwrap();
        generators::uniform(domain, n, &mut rng(seed))
    }

    #[test]
    fn validates_config() {
        let ds = dataset(100, 0);
        assert!(Privelet::build(&ds, &PriveletConfig::new(0.0, 8), &mut rng(1)).is_err());
        assert!(Privelet::build(&ds, &PriveletConfig::new(1.0, 0), &mut rng(1)).is_err());
    }

    #[test]
    fn pads_non_power_of_two() {
        let ds = dataset(500, 2);
        let w = Privelet::build(&ds, &PriveletConfig::new(1.0, 6), &mut rng(3)).unwrap();
        assert_eq!(w.m(), 6);
        assert_eq!(w.padded_size(), 8);
        assert_eq!(w.grid().cols(), 6);
    }

    #[test]
    fn huge_epsilon_recovers_exact_counts() {
        let ds = dataset(2_000, 4);
        let w = Privelet::build(&ds, &PriveletConfig::new(1e9, 8), &mut rng(5)).unwrap();
        let q = Rect::new(0.0, 0.0, 4.0, 4.0).unwrap();
        let truth = ds.count_in(&q) as f64;
        assert!(
            (w.answer(&q) - truth).abs() < 1e-2,
            "got {} truth {truth}",
            w.answer(&q)
        );
        assert!((w.total_estimate() - 2_000.0).abs() < 1e-2);
    }

    #[test]
    fn range_noise_beats_independent_cells_at_large_m() {
        // The wavelet's raison d'être: noise on large range sums is much
        // smaller than summing m² independent Laplace draws — but only
        // once m is large enough that ρ = (1+log₂m)² < m. The paper sees
        // exactly this: W₃₆₀ helps, W₁₂₈ and below does not (Fig 3 vs 5).
        //
        // Theory for the whole-domain sum: wavelet std = √2·ρ/ε versus
        // UG std = √2·m/ε. At m = 128: ρ = 64 < 128 → wavelet wins 2×.
        let ds = dataset(0, 6); // zero data isolates the noise
        let m = 128usize;
        let eps = 1.0;
        let trials = 60;
        let mut r = rng(7);
        let mut sum_sq_w = 0.0;
        for _ in 0..trials {
            let w = Privelet::build(&ds, &PriveletConfig::new(eps, m), &mut r).unwrap();
            let total = w.total_estimate();
            sum_sq_w += total * total;
        }
        let std_w = (sum_sq_w / trials as f64).sqrt();
        let std_ug = ((m * m) as f64 * 2.0 / (eps * eps)).sqrt();
        let rho = crate::wavelet::generalized_sensitivity_2d(m, m);
        let theory_w = (2.0f64).sqrt() * rho / eps;
        assert!(
            (std_w - theory_w).abs() < theory_w * 0.4,
            "wavelet total std {std_w} vs theory {theory_w}"
        );
        assert!(
            std_w < std_ug * 0.75,
            "wavelet total std {std_w} not clearly below UG {std_ug}"
        );
    }

    #[test]
    fn small_grids_do_not_benefit() {
        // Counterpart of the test above: at m = 16, ρ = 25 > 16 and the
        // wavelet's whole-domain noise EXCEEDS UG's — matching the
        // paper's observation that Privelet on small grids is worse.
        let m = 16usize;
        let rho = crate::wavelet::generalized_sensitivity_2d(m, m);
        assert!(rho > m as f64);
    }

    #[test]
    fn empty_dataset_is_pure_noise_but_finite() {
        let domain = Domain::from_corners(0.0, 0.0, 1.0, 1.0).unwrap();
        let ds = GeoDataset::from_points(vec![], domain).unwrap();
        let w = Privelet::build(&ds, &PriveletConfig::new(0.5, 4), &mut rng(8)).unwrap();
        let q = Rect::new(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(w.answer(&q).is_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = dataset(300, 9);
        let a = Privelet::build(&ds, &PriveletConfig::new(1.0, 8), &mut rng(10)).unwrap();
        let b = Privelet::build(&ds, &PriveletConfig::new(1.0, 8), &mut rng(10)).unwrap();
        assert_eq!(a.grid().values(), b.grid().values());
    }

    #[test]
    fn cells_partition_domain() {
        let ds = dataset(100, 11);
        let w = Privelet::build(&ds, &PriveletConfig::new(1.0, 5), &mut rng(12)).unwrap();
        let area: f64 = w.cells().iter().map(|(r, _)| r.area()).sum();
        assert!((area - 64.0).abs() < 1e-9);
    }
}
