//! End-to-end temporal serving: a timestamped stream ingested across
//! several epochs, served through the full TCP front door (binary v2),
//! answering sliding-window queries that match single-threaded
//! per-epoch compiled-surface sums within 1e-9 — including after the
//! compactor merges the oldest tier. Also pins the epoch-key naming
//! convention on the wire: every epoch of a keyspace is enumerable
//! through an ordinary `Keys` request.

use std::collections::BTreeMap;
use std::sync::Arc;

use dpgrid::core::{epoch_key, merge_releases, EpochLayout, EpochRange};
use dpgrid::mech::BudgetSchedule;
use dpgrid::net::{NetError, TcpClient, TcpServer};
use dpgrid::prelude::*;
use dpgrid::serve::wire::ErrorCode;
use dpgrid::stream::{Compactor, StreamIngestor};

/// A [`ReleaseSink`] view of a shared, live [`QueryEngine`]: what a
/// deployment's ingest loop holds while the serving side answers
/// queries against the same catalog.
struct EngineSink(Arc<QueryEngine>);

impl ReleaseSink for EngineSink {
    fn accept_release(&mut self, key: String, release: Release) {
        self.0.with_catalog(|catalog| {
            catalog.insert(key, release);
        });
    }

    fn evict_release(&mut self, key: &str) -> bool {
        self.0.with_catalog(|catalog| catalog.remove(key).is_some())
    }
}

fn domain() -> Domain {
    Domain::from_corners(0.0, 0.0, 10.0, 10.0).unwrap()
}

/// Deterministic per-epoch point clouds: epochs differ in both count
/// and placement so no two epoch surfaces are interchangeable.
fn push_epoch(ingestor: &mut StreamIngestor, sink: &mut EngineSink, epoch: u64) {
    let n = 150 + 40 * epoch as usize;
    for i in 0..n {
        let x = 0.05 + ((i as f64 * 7.3 + epoch as f64 * 1.7) % 9.9);
        let y = 0.05 + ((i as f64 * 3.1 + epoch as f64 * 4.9) % 9.9);
        let t = epoch as f64 * 60.0 + (i % 59) as f64;
        ingestor
            .push(Point::new(x, y), t, sink)
            .expect("in-order, in-domain points ingest cleanly");
    }
}

fn query_rects() -> Vec<Rect> {
    vec![
        Rect::new(0.0, 0.0, 10.0, 10.0).unwrap(),
        Rect::new(1.25, 2.5, 7.75, 8.5).unwrap(),
        Rect::new(0.1, 8.9, 9.9, 9.6).unwrap(),
    ]
}

fn assert_close(got: f64, want: f64, what: &str) {
    assert!(
        (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
        "{what}: got {got}, want {want}"
    );
}

#[test]
fn stream_to_tcp_window_queries_match_per_epoch_sums() {
    // Ingest five epochs of a timestamped stream straight into a live
    // engine's catalog while a TCP server fronts it.
    let engine = Arc::new(QueryEngine::new(Catalog::new()));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let mut sink = EngineSink(Arc::clone(&engine));

    let layout = EpochLayout::new(0.0, 60.0).unwrap();
    let schedule = BudgetSchedule::uniform(1.0, 8).unwrap();
    let mut ingestor = StreamIngestor::new("taxi", domain(), layout, schedule)
        .unwrap()
        .with_seed(42);
    for epoch in 0..5 {
        push_epoch(&mut ingestor, &mut sink, epoch);
    }
    ingestor.flush(&mut sink).unwrap();

    // The single-threaded reference: the ingestor's own retained copies
    // of the five published releases.
    let fine: BTreeMap<u64, Release> = ingestor.retained_fine().clone();
    assert_eq!(
        fine.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 2, 3, 4]
    );

    // Epoch-key naming convention on the wire: a plain Keys request
    // enumerates every epoch of the keyspace.
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    assert_eq!(
        client.protocol_version(),
        Some(2),
        "the front door negotiates binary v2"
    );
    let expected_keys: Vec<String> = (0..5)
        .map(|e| epoch_key("taxi", EpochRange::single(e)))
        .collect();
    assert_eq!(client.keys().unwrap(), expected_keys);

    // Sliding windows through the binary front door equal per-epoch
    // compiled-surface sums.
    let rects = query_rects();
    for (start, end) in [(0u64, 5u64), (1, 4), (2, 3), (0, 2)] {
        let answer = client.window("taxi", start, end, &rects).unwrap();
        assert_eq!(
            answer.covered,
            (start..end).map(EpochRange::single).collect::<Vec<_>>()
        );
        for (i, q) in rects.iter().enumerate() {
            let want: f64 = (start..end).map(|e| fine[&e].answer(q)).sum();
            assert_close(
                answer.answers[i],
                want,
                &format!("window [{start},{end}) rect #{i}"),
            );
        }
    }

    // A JSON-pinned client gets bit-identical answers: codec choice
    // never changes what the engine computes.
    let mut v1 = TcpClient::connect_with_protocol(server.local_addr(), 1).unwrap();
    assert_eq!(v1.protocol_version(), Some(1));
    let a2 = client.window("taxi", 1, 4, &rects).unwrap();
    let a1 = v1.window("taxi", 1, 4, &rects).unwrap();
    assert_eq!(a1, a2);

    // Window-edge semantics through the wire, all typed:
    // entirely after the retained epochs → UnknownKey naming the range;
    match client.window("taxi", 10, 20, &rects) {
        Err(NetError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::UnknownKey);
            assert!(e.message.contains("taxi@epoch:10-20"), "{}", e.message);
        }
        other => panic!("expected UnknownKey, got {other:?}"),
    }
    // an unknown keyspace → UnknownKey;
    match client.window("bikes", 0, 5, &rects) {
        Err(NetError::Server(e)) => assert_eq!(e.code, ErrorCode::UnknownKey),
        other => panic!("expected UnknownKey, got {other:?}"),
    }
    // an empty window → InvalidQuery (never a silent zero).
    match client.window("taxi", 3, 3, &rects) {
        Err(NetError::Server(e)) => assert_eq!(e.code, ErrorCode::InvalidQuery),
        other => panic!("expected InvalidQuery, got {other:?}"),
    }

    // Compact the oldest tier: epochs [0, 2) merge into one coarser
    // release; their fine keys are evicted from the live catalog.
    let compactor = Compactor::new(2, 2).unwrap();
    let tiers = compactor.compact(&mut ingestor, &mut sink).unwrap();
    assert_eq!(tiers.len(), 1);
    assert_eq!(tiers[0].range, EpochRange::new(0, 2).unwrap());
    let mut after_keys = vec![epoch_key("taxi", EpochRange::new(0, 2).unwrap())];
    after_keys.extend((2..5).map(|e| epoch_key("taxi", EpochRange::single(e))));
    after_keys.sort();
    assert_eq!(client.keys().unwrap(), after_keys);

    // A window straddling the compacted tier still answers through the
    // same front door — coverage widens visibly to the whole tier, and
    // the sums match the reference merge of the fine surfaces.
    let merged = merge_releases("reference", &[&fine[&0], &fine[&1]]).unwrap();
    let answer = client.window("taxi", 1, 4, &rects).unwrap();
    assert_eq!(
        answer.covered,
        vec![
            EpochRange::new(0, 2).unwrap(),
            EpochRange::single(2),
            EpochRange::single(3),
        ]
    );
    for (i, q) in rects.iter().enumerate() {
        let want = merged.answer(q) + fine[&2].answer(q) + fine[&3].answer(q);
        assert_close(
            answer.answers[i],
            want,
            &format!("post-compaction rect #{i}"),
        );
    }

    // A window entirely inside the merged span answers from the tier.
    let answer = client.window("taxi", 0, 1, &rects).unwrap();
    assert_eq!(answer.covered, vec![EpochRange::new(0, 2).unwrap()]);
    for (i, q) in rects.iter().enumerate() {
        assert_close(
            answer.answers[i],
            merged.answer(q),
            &format!("tier rect #{i}"),
        );
    }

    server.shutdown();
}
