//! End-to-end equivalence of the sharded serving tier.
//!
//! One keyspace, published twice: into a single reference engine
//! holding every release, and through a `ShardedSink` across four
//! shard engines (placement by the same rendezvous hash the router
//! uses). A 4-shard `ShardRouter` — two `LocalShard`s in-process, two
//! `RemoteShard`s behind real ephemeral-port `TcpServer`s — must then
//! answer mixed-key multi-rect batches **identically (≤ 1e-9)** to the
//! reference engine, under concurrent clients, and keep failures
//! isolated when one shard sheds typed `Overloaded`. A front-door
//! `TcpServer` bound to the router itself closes the loop: the whole
//! fleet behind one unchanged wire protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpgrid::prelude::*;

const SHARD_NAMES: [&str; 4] = ["shard-a", "shard-b", "shard-c", "shard-d"];
const CLIENT_THREADS: usize = 4;
const ITERATIONS: usize = 12;

fn methods(i: usize) -> Method {
    match i % 3 {
        0 => Method::ug(16),
        1 => Method::ag_suggested(),
        _ => Method::KdHybrid,
    }
}

fn workload(domain: &Rect, n: usize) -> Vec<Rect> {
    let (x0, y0) = (domain.x0(), domain.y0());
    let (w, h) = (domain.width(), domain.height());
    let mut rects = vec![*domain];
    for i in 0..n.saturating_sub(1) {
        let t = i as f64 / n as f64;
        rects.push(
            Rect::new(
                x0 + 0.45 * w * t,
                y0 + 0.35 * h * t,
                x0 + 0.15 * w + 0.8 * w * t,
                y0 + 0.2 * h + 0.7 * h * t,
            )
            .unwrap(),
        );
    }
    rects
}

struct Fleet {
    reference: QueryEngine,
    router: Arc<ShardRouter>,
    engines: Vec<Arc<QueryEngine>>,
    servers: Vec<dpgrid::net::TcpServer>,
    keys: Vec<String>,
}

/// Publishes `n_keys` releases into the reference engine and across
/// four shard engines, then wires a router over 2 local + 2 remote
/// shards (the remotes behind real loopback TCP servers).
fn fleet(n_keys: usize) -> Fleet {
    let dataset = PaperDataset::Storage.generate_n(71, 4_000).unwrap();
    let mut reference = Catalog::new();
    let engines: Vec<Arc<QueryEngine>> = SHARD_NAMES
        .iter()
        .map(|_| Arc::new(QueryEngine::new(Catalog::new())))
        .collect();
    let mut sink = ShardedSink::new(
        SHARD_NAMES
            .iter()
            .zip(&engines)
            .map(|(name, engine)| (name.to_string(), LocalShard::new(Arc::clone(engine))))
            .collect(),
    );
    let keys: Vec<String> = (0..n_keys).map(|i| format!("release-{i:02}")).collect();
    for (i, key) in keys.iter().enumerate() {
        let pipeline = Pipeline::new(&dataset)
            .epsilon(1.0)
            .method(methods(i))
            .seed(100 + i as u64);
        pipeline.publish_into(&mut reference, key.clone()).unwrap();
        pipeline.publish_into(&mut sink, key.clone()).unwrap();
    }

    // Shards c and d go remote: their engines behind real TCP servers.
    let servers: Vec<dpgrid::net::TcpServer> = engines[2..]
        .iter()
        .map(|engine| TcpServer::bind(Arc::clone(engine), "127.0.0.1:0").unwrap())
        .collect();
    let router = ShardRouter::new();
    for (name, engine) in SHARD_NAMES.iter().take(2).zip(&engines) {
        router
            .add_shard(*name, LocalShard::new(Arc::clone(engine)))
            .unwrap();
    }
    for (name, server) in SHARD_NAMES.iter().skip(2).zip(&servers) {
        router
            .add_shard(*name, RemoteShard::connect(server.local_addr()).unwrap())
            .unwrap();
    }
    Fleet {
        reference: QueryEngine::new(reference),
        router: Arc::new(router),
        engines,
        servers,
        keys,
    }
}

#[test]
fn four_shard_router_matches_single_engine_under_concurrent_clients() {
    let fleet = fleet(12);
    let dataset_domain = Rect::new(-124.0, 24.0, -66.0, 49.0).unwrap();
    let rects = workload(&dataset_domain, 9);

    // Both remote shards must actually own keys, or the test would
    // silently exercise only the local path.
    for name in SHARD_NAMES {
        assert!(
            fleet
                .keys
                .iter()
                .any(|k| fleet.router.route(k).as_deref() == Some(name)),
            "no key landed on {name}; choose more keys"
        );
    }
    // The router advertises exactly the reference keyspace, and every
    // key is placed where routing expects it.
    assert_eq!(fleet.router.keys(), fleet.reference.keys());
    for key in &fleet.keys {
        assert!(fleet.router.contains_key(key), "{key} misplaced");
    }

    // Reference answers, computed single-threaded.
    let reference_answers: Vec<Vec<f64>> = fleet
        .keys
        .iter()
        .map(|k| {
            fleet
                .reference
                .answer(&QueryRequest::new(k.clone(), rects.clone()))
                .unwrap()
                .answers
        })
        .collect();

    // Concurrent clients hammer the router with mixed-key batches —
    // every response must match the reference to ≤ 1e-9, in order.
    let checked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let fleet = &fleet;
            let rects = &rects;
            let reference_answers = &reference_answers;
            let checked = &checked;
            scope.spawn(move || {
                for i in 0..ITERATIONS {
                    // Rotate the batch composition per thread/iteration
                    // so sub-batches hit every shard in every shape.
                    let order: Vec<usize> = (0..fleet.keys.len())
                        .map(|j| (j + t + i) % fleet.keys.len())
                        .collect();
                    let batch: Vec<QueryRequest> = order
                        .iter()
                        .map(|&j| QueryRequest::new(fleet.keys[j].clone(), rects.clone()))
                        .collect();
                    let responses = fleet.router.answer_batch(&batch);
                    assert_eq!(responses.len(), batch.len());
                    for (&j, response) in order.iter().zip(responses) {
                        let response = response.unwrap();
                        assert_eq!(response.release_key, fleet.keys[j], "order broken");
                        for (a, e) in response.answers.iter().zip(&reference_answers[j]) {
                            assert!(
                                (a - e).abs() <= 1e-9 * (1.0 + e.abs()),
                                "{}: routed {a} vs reference {e}",
                                fleet.keys[j]
                            );
                        }
                        checked.fetch_add(response.answers.len() as u64, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        checked.load(Ordering::Relaxed),
        (CLIENT_THREADS * ITERATIONS * fleet.keys.len() * rects.len()) as u64
    );

    // Merged stats are the exact sum of the four backends — plus the
    // transport tail the two remote shards' servers report (the bare
    // engines carry none), which must show real socket traffic.
    let mut merged = fleet.router.stats();
    let by_hand: EngineStats = fleet.engines.iter().map(|e| e.stats()).sum();
    let transport = merged
        .transport
        .take()
        .expect("remote shards surface their servers' transport counters");
    assert!(transport.accepted >= fleet.servers.len() as u64);
    assert!(transport.frames_decoded > 0);
    assert!(transport.bytes_in > 0 && transport.bytes_out > 0);
    assert_eq!(merged, by_hand);
    assert_eq!(merged.unknown_keys, 0);
    let router_stats = fleet.router.router_stats();
    assert_eq!(
        router_stats.shards.iter().map(|s| s.routed).sum::<u64>(),
        (CLIENT_THREADS * ITERATIONS * fleet.keys.len()) as u64
    );
    assert!(router_stats.shards.iter().all(|s| s.failed == 0));

    for server in fleet.servers {
        server.shutdown();
    }
}

#[test]
fn front_door_server_proxies_the_fleet_over_one_socket() {
    let fleet = fleet(8);
    let rects = workload(&Rect::new(-124.0, 24.0, -66.0, 49.0).unwrap(), 5);
    // The router is a QueryService, so the unchanged TcpServer serves
    // the whole fleet: one front-door node proxying 2 local + 2 remote
    // backends.
    let front_door = TcpServer::bind(Arc::clone(&fleet.router), "127.0.0.1:0").unwrap();
    let mut client = TcpClient::connect(front_door.local_addr()).unwrap();
    client.ping().unwrap();
    assert_eq!(client.keys().unwrap(), fleet.reference.keys());

    let batch: Vec<QueryRequest> = fleet
        .keys
        .iter()
        .map(|k| QueryRequest::new(k.clone(), rects.clone()))
        .collect();
    let outcomes = client.query_batch(&batch).unwrap();
    for (key, outcome) in fleet.keys.iter().zip(outcomes) {
        let remote = outcome.unwrap();
        let local = fleet
            .reference
            .answer(&QueryRequest::new(key.clone(), rects.clone()))
            .unwrap();
        assert_eq!(remote.release_key, *key);
        for (a, e) in remote.answers.iter().zip(&local.answers) {
            assert!((a - e).abs() <= 1e-9 * (1.0 + e.abs()), "{key}: {a} vs {e}");
        }
    }
    // An unknown key through the front door fails alone, typed.
    let outcomes = client
        .query_batch(&[
            QueryRequest::new(fleet.keys[0].clone(), rects.clone()),
            QueryRequest::new("nope", rects.clone()),
        ])
        .unwrap();
    assert!(outcomes[0].is_ok());
    assert!(matches!(
        &outcomes[1],
        Err(e) if e.code == dpgrid::serve::wire::ErrorCode::UnknownKey
    ));

    front_door.shutdown();
    for server in fleet.servers {
        server.shutdown();
    }
}

#[test]
fn one_overloaded_shard_fails_only_its_sub_batch_through_the_router() {
    let fleet = fleet(10);
    let rects = workload(&Rect::new(-124.0, 24.0, -66.0, 49.0).unwrap(), 4);

    // Add a fifth, admission-choked shard; rendezvous steals ~1/5 of
    // the keys for it. The name is chosen (deterministically — the
    // hash is a pure function) so the new shard wins at least one key
    // but not all, whatever the key set. Publish those keys there so
    // only *admission* fails, not placement.
    let tiny_name = (0..)
        .map(|i| format!("shard-tiny-{i}"))
        .find(|name| {
            let names: Vec<&str> = SHARD_NAMES.iter().copied().chain([name.as_str()]).collect();
            let won = fleet
                .keys
                .iter()
                .filter(|k| dpgrid::core::rendezvous_route(&names, k) == Some(4))
                .count();
            won >= 1 && won < fleet.keys.len()
        })
        .unwrap();
    let choked_engine = Arc::new(QueryEngine::new(Catalog::new()).with_admission_limit(1));
    fleet
        .router
        .add_shard(&tiny_name, LocalShard::new(Arc::clone(&choked_engine)))
        .unwrap();
    let moved: Vec<String> = fleet
        .keys
        .iter()
        .filter(|k| fleet.router.route(k).as_deref() == Some(tiny_name.as_str()))
        .cloned()
        .collect();
    assert!(!moved.is_empty(), "the new shard must win some keys");
    assert!(moved.len() < fleet.keys.len(), "but not all of them");
    let dataset = PaperDataset::Storage.generate_n(71, 4_000).unwrap();
    let mut sink = LocalShard::new(Arc::clone(&choked_engine));
    for key in &moved {
        let i: usize = key.trim_start_matches("release-").parse().unwrap();
        Pipeline::new(&dataset)
            .epsilon(1.0)
            .method(methods(i))
            .seed(100 + i as u64)
            .publish_into(&mut sink, key.clone())
            .unwrap();
    }

    // Concurrent clients: requests on the choked shard shed typed
    // Overloaded (each carries > 1 rect); everything else still
    // matches the reference exactly.
    std::thread::scope(|scope| {
        for _ in 0..CLIENT_THREADS {
            let fleet = &fleet;
            let rects = &rects;
            let moved = &moved;
            scope.spawn(move || {
                for _ in 0..4 {
                    let batch: Vec<QueryRequest> = fleet
                        .keys
                        .iter()
                        .map(|k| QueryRequest::new(k.clone(), rects.clone()))
                        .collect();
                    for (key, result) in fleet.keys.iter().zip(fleet.router.answer_batch(&batch)) {
                        if moved.contains(key) {
                            assert!(
                                matches!(result, Err(ServeError::Overloaded { .. })),
                                "{key}: expected Overloaded, got {result:?}"
                            );
                        } else {
                            let response = result.unwrap();
                            let expect = fleet
                                .reference
                                .answer(&QueryRequest::new(key.clone(), rects.clone()))
                                .unwrap();
                            for (a, e) in response.answers.iter().zip(&expect.answers) {
                                assert!((a - e).abs() <= 1e-9 * (1.0 + e.abs()));
                            }
                        }
                    }
                }
            });
        }
    });
    let stats = fleet.router.router_stats();
    let tiny = stats.shards.iter().find(|s| s.name == tiny_name).unwrap();
    assert_eq!(tiny.failed, (CLIENT_THREADS * 4 * moved.len()) as u64);
    assert_eq!(tiny.engine.shed, tiny.failed);
    // Removing the choked shard hands its keys back to the original
    // four — and their releases are still there, so they answer again.
    assert!(fleet.router.remove_shard(&tiny_name));
    for key in &moved {
        let result = fleet
            .router
            .answer_batch(&[QueryRequest::new(key.clone(), rects.clone())])
            .remove(0);
        assert!(result.is_ok(), "{key} after removal: {result:?}");
    }
    for server in fleet.servers {
        server.shutdown();
    }
}
