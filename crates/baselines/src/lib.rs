//! Baseline differentially private synopsis methods.
//!
//! Every comparator the paper evaluates against, reimplemented from the
//! cited descriptions:
//!
//! * [`KdStandard`] — Cormode et al.'s KD-tree with noisy-median splits
//!   at every level (the paper's `Kst`);
//! * [`KdHybrid`] — quadtree top levels + KD-tree below, geometric budget
//!   allocation and constrained inference (the paper's `Khy`, the state
//!   of the art UG/AG are measured against);
//! * [`HierarchicalGrid`] — the `H_{b,d}` grids of Figure 3: a `b × b`
//!   branching hierarchy of depth `d` over a base grid, with Hay-style
//!   constrained inference;
//! * [`Privelet`] — Xiao et al.'s wavelet method (`W_m`): 2-D Haar
//!   standard decomposition with generalized-sensitivity noise weights;
//! * [`FlatCount`] — the trivial 1 × 1 synopsis (total count spread
//!   uniformly), the `c → ∞` anchor of Guideline 1;
//! * [`inference::CiTree`] — the generic minimum-variance constrained
//!   inference engine shared by the tree-shaped baselines (Hay et al.,
//!   generalised to arbitrary branching and per-node budgets);
//! * [`oned`] — 1-D flat and hierarchical histograms, the control side
//!   of §IV-C's dimensionality contrast.
//!
//! All types implement [`dpgrid_geo::Synopsis`] and construct through
//! the uniform [`dpgrid_geo::Build`] trait, so the method registry and
//! the evaluation harness treat them interchangeably with UG/AG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flat;
mod hierarchy;
pub mod inference;
mod kd;
pub mod oned;
mod privelet;
pub mod wavelet;

pub use flat::FlatCount;
pub use hierarchy::{Allocation, HierarchicalGrid, HierarchyConfig};
pub use kd::{KdConfig, KdHybrid, KdStandard, KdTreeConfig, KdTreeSynopsis};
pub use privelet::{Privelet, PriveletConfig};

/// Baselines use the workspace's unified construction error: the
/// failure modes (invalid config, geometry, mechanism) are identical
/// for every method.
pub use dpgrid_geo::DpError as BaselineError;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BaselineError>;
