//! C10K-style serving: one readiness-multiplexed server holding
//! hundreds of mostly-idle connections while busy clients pipeline
//! through it.
//!
//! ```sh
//! cargo run --release --example mux_serving
//! ```
//!
//! Demonstrates the multiplexed transport that `TcpServer::bind` now
//! uses by default: a small worker pool (one epoll/poll(2) run loop
//! per worker) multiplexes every connection as a nonblocking state
//! machine, so idle connections cost no threads and no per-tick work.
//! The example parks a few hundred idle connections, drives real
//! pipelined traffic through the same server, verifies every remote
//! answer against the in-process engine, and reads the server's
//! transport counters back over the wire — then does the same against
//! the thread-per-connection mode to show both modes answer
//! identically.

use std::net::TcpStream;
use std::sync::Arc;

use dpgrid::net::ServerMode;
use dpgrid::prelude::*;

const IDLE_CONNECTIONS: usize = 300;
const BUSY_CLIENTS: usize = 8;
const PIPELINE_DEPTH: usize = 16;

fn main() {
    // 1. Publish a release and serve it — multiplexed by default.
    let data = PaperDataset::Storage
        .generate_n(404, 20_000)
        .expect("generate dataset");
    let mut catalog = Catalog::new();
    Pipeline::new(&data)
        .epsilon(1.0)
        .method(Method::ag_suggested())
        .seed(17)
        .publish_into(&mut catalog, "storage")
        .expect("publish");
    let engine = Arc::new(QueryEngine::new(catalog));
    let server = TcpServer::bind(Arc::clone(&engine), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    println!("serving on {addr} (mode: {:?})", server.mode());

    // 2. Park a crowd of idle connections. Under the multiplexed
    //    transport these cost a registration each — no threads, no
    //    stacks, no per-tick polling.
    let idle: Vec<TcpStream> = (0..IDLE_CONNECTIONS)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    println!("parked {} idle connections", idle.len());

    // 3. Drive pipelined traffic through the same server while the
    //    crowd sits there, checking every answer against the
    //    in-process engine.
    let domain = *data.domain().rect();
    let rects: Vec<Rect> = (0..PIPELINE_DEPTH)
        .map(|i| {
            let t = i as f64 / PIPELINE_DEPTH as f64;
            Rect::new(
                domain.x0(),
                domain.y0(),
                domain.x0() + domain.width() * (0.2 + 0.8 * t),
                domain.y0() + domain.height() * (0.3 + 0.7 * t),
            )
            .expect("rect")
        })
        .collect();
    let expected = engine
        .answer(&QueryRequest::new("storage", rects.clone()))
        .expect("reference")
        .answers;
    std::thread::scope(|scope| {
        for _ in 0..BUSY_CLIENTS {
            let rects = &rects;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                let batch: Vec<QueryRequest> = rects
                    .iter()
                    .map(|r| QueryRequest::new("storage", vec![*r]))
                    .collect();
                for _ in 0..20 {
                    let outcomes = client.query_pipelined(&batch).expect("pipeline");
                    for (i, outcome) in outcomes.into_iter().enumerate() {
                        let got = outcome.expect("answer").answers[0];
                        let want = expected[i];
                        assert!(
                            (got - want).abs() <= 1e-9 * (1.0 + want.abs()),
                            "remote {got} vs local {want}"
                        );
                    }
                }
            });
        }
    });
    println!(
        "{} busy clients × 20 pipelines of depth {} verified against the engine",
        BUSY_CLIENTS, PIPELINE_DEPTH
    );

    // 4. The server's socket-level counters travel in the ordinary
    //    wire Stats response.
    let mut client = TcpClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let transport = stats.transport.expect("transport counters");
    println!(
        "transport: accepted={} active={} frames_decoded={} bytes_in={} bytes_out={} \
         read_stalls={} write_stalls={}",
        transport.accepted,
        transport.active,
        transport.frames_decoded,
        transport.bytes_in,
        transport.bytes_out,
        transport.read_stalls,
        transport.write_stalls,
    );
    assert!(transport.active as usize > IDLE_CONNECTIONS);
    drop(idle);
    server.shutdown();

    // 5. Same service behind the thread-per-connection mode: answers
    //    are identical — the backends differ only in how they schedule
    //    sockets.
    let threaded =
        TcpServer::bind_with_mode(Arc::clone(&engine), "127.0.0.1:0", ServerMode::Threaded)
            .expect("bind threaded");
    let mut client = TcpClient::connect(threaded.local_addr()).expect("connect");
    let response = client
        .query("storage", &rects)
        .expect("query over threaded mode");
    for (got, want) in response.answers.iter().zip(&expected) {
        assert!((got - want).abs() <= 1e-9 * (1.0 + want.abs()));
    }
    println!(
        "threaded mode agrees on all {} answers; done",
        response.answers.len()
    );
    threaded.shutdown();
}
