//! Per-query answering latency per method.
//!
//! UG/AG answer through summed-area tables (O(1) interior + O(perimeter)
//! borders); KD trees descend the decomposition. These benches measure a
//! mid-size (q4-like) and a large (q6-like) query on prebuilt synopses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dpgrid_baselines::{KdConfig, KdHybrid, Privelet, PriveletConfig};
use dpgrid_bench::{bench_dataset, bench_rng};
use dpgrid_core::{AdaptiveGrid, AgConfig, Release, Synopsis, UgConfig, UniformGrid};
use dpgrid_geo::Rect;

const N: usize = 100_000;
const EPS: f64 = 1.0;

fn queries() -> Vec<(&'static str, Rect)> {
    // landmark domain is [-130, -70] x [10, 50].
    vec![
        ("mid", Rect::new(-110.0, 25.0, -100.0, 30.0).unwrap()),
        ("large", Rect::new(-125.0, 12.0, -85.0, 32.0).unwrap()),
    ]
}

fn bench_queries(c: &mut Criterion) {
    let dataset = bench_dataset(N);
    let mut rng = bench_rng();
    let ug = UniformGrid::build(&dataset, &UgConfig::guideline(EPS), &mut rng).unwrap();
    let ag = AdaptiveGrid::build(&dataset, &AgConfig::guideline(EPS), &mut rng).unwrap();
    let wav = Privelet::build(&dataset, &PriveletConfig::new(EPS, 256), &mut rng).unwrap();
    let kd = KdHybrid::build(&dataset, &KdConfig::new(EPS), &mut rng).unwrap();

    let mut group = c.benchmark_group("query");
    for (qname, q) in queries() {
        group.bench_function(format!("ug/{qname}"), |b| {
            b.iter(|| black_box(ug.answer(black_box(&q))))
        });
        group.bench_function(format!("ag/{qname}"), |b| {
            b.iter(|| black_box(ag.answer(black_box(&q))))
        });
        group.bench_function(format!("privelet/{qname}"), |b| {
            b.iter(|| black_box(wav.answer(black_box(&q))))
        });
        group.bench_function(format!("kd_hybrid/{qname}"), |b| {
            b.iter(|| black_box(kd.answer(black_box(&q))))
        });
    }
    group.finish();
}

/// The interchange format must be as fast to query as the producing
/// method: compiled-surface answering vs the naive cell scan, per query
/// and batched.
fn bench_release_surface(c: &mut Criterion) {
    let dataset = bench_dataset(N);
    let mut rng = bench_rng();
    let ag = AdaptiveGrid::build(&dataset, &AgConfig::guideline(EPS), &mut rng).unwrap();
    let release = Release::from_synopsis("AG", &ag);
    release.surface(); // compile outside the timed region

    let mut group = c.benchmark_group("release");
    for (qname, q) in queries() {
        group.bench_function(format!("compiled/{qname}"), |b| {
            b.iter(|| black_box(release.answer(black_box(&q))))
        });
        group.bench_function(format!("linear_scan/{qname}"), |b| {
            b.iter(|| black_box(release.answer_linear_scan(black_box(&q))))
        });
    }

    // Serving-style batch: 1024 mixed-size queries in one answer_all
    // call (chunked across threads) vs a sequential map.
    let domain = *dataset.domain().rect();
    let batch: Vec<Rect> = (0..1024)
        .map(|i| {
            let fx = (i % 32) as f64 / 32.0;
            let fy = (i / 32) as f64 / 32.0;
            let w = domain.width() * (0.01 + 0.2 * fx);
            let h = domain.height() * (0.01 + 0.2 * fy);
            let x0 = domain.x0() + (domain.width() - w) * fx;
            let y0 = domain.y0() + (domain.height() - h) * fy;
            Rect::new(x0, y0, x0 + w, y0 + h).unwrap()
        })
        .collect();
    group.bench_function("batch_1024/answer_all", |b| {
        b.iter(|| black_box(release.answer_all(black_box(&batch))))
    });
    group.bench_function("batch_1024/sequential", |b| {
        b.iter(|| {
            let out: Vec<f64> = batch.iter().map(|q| release.answer(q)).collect();
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries, bench_release_surface);
criterion_main!(benches);
